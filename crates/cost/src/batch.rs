//! Batched candidate costing in structure-of-arrays layout.
//!
//! [`ChunkBatch`] accumulates a chunk of candidates as flat columns
//! (fragment counts, per-candidate page geometry, per-class match
//! results), and [`evaluate_chunk`] prices all of them against a
//! [`CostTables`] in three phases per query class: an irregular matching
//! pass that resolves predicates through the precomputed tables, a Yao
//! stage that resolves page-hit curves through two memos (gathering the
//! misses for one lane-batched kernel call), and a straight-line
//! arithmetic pass over the `f64` columns, dispatched to a
//! [`CostKernel`] backend (scalar reference, portable lane arrays, or
//! runtime-detected AVX2 — see [`crate::kernel`]). The expression
//! sequence per (candidate, class) is exactly the scalar
//! [`estimate_query`](crate::access::estimate_query) path, so batched
//! results are bit-identical to [`CostModel::evaluate_layout`]
//! (crate::CostModel::evaluate_layout) on every backend — pinned by the
//! `batched_equivalence` proptest in `xtests`.
//!
//! Compared to the scalar path, a chunk of N candidates × C classes
//! performs the class-independent geometry (Yao/Cardenas inputs, prefetch
//! granules, sequential-scan pricing) once per candidate instead of C
//! times, resolves per-dimension occupancy statistics by table lookup
//! instead of recomputation, and memoizes the Yao page-hit curve — both
//! across classes that share a residual selectivity within one candidate
//! and across candidates/chunks through a persistent exact-argument memo
//! (`yao_page_hits` is a pure function, so identical arguments reproduce
//! identical bits).
//!
//! # Padding invariant
//!
//! Every `f64` column the arithmetic kernels read or write lives in a
//! cache-line-aligned [`AlignedF64Col`] and is padded to a multiple of
//! [`LANES`] with **inert** candidates: zero fragments, zero geometry,
//! not indexable. Inert lanes produce finite all-zero outputs by
//! construction, are never read back (every consumer loop runs over the
//! live `0..n` prefix only), and never reach either Yao memo (the
//! gather loop is scalar over the live prefix). The
//! `padded_tail_lanes_stay_inert` test pins this.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use warlock_bitmap::estimate;
use warlock_fragment::{FragmentLayout, Fragmentation, LayoutScratch};
use warlock_schema::DimensionId;

use crate::access::{AccessPath, QueryCost};
use crate::kernel::{
    AlignedF64Col, CostKernel, CostPassInput, CostPassOutput, KernelBackend, KernelChoice, LANES,
};
use crate::model::{CandidateCost, ClassCost};
use crate::prefetch::effective_prefetch;
use crate::tables::{BitmapContrib, CostTables};

/// How much per-class detail [`evaluate_chunk_with`] materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerQueryDetail {
    /// Materialize the full per-class [`QueryCost`] rows.
    Full,
    /// Leave `per_query` empty. All aggregate fields of the returned
    /// [`CandidateCost`]s are still bit-identical to the scalar path —
    /// only the per-class detail rows are skipped. The ranking pipeline
    /// uses this and re-derives detail for the final ranked handful.
    Omit,
}

/// Entry cap of the persistent Yao memo — far above what any realistic
/// workload produces, purely a bound against pathological key churn.
const YAO_MEMO_CAP: usize = 1 << 20;

/// Mixes the three 64-bit key words of the Yao memo directly — the keys
/// are already high-entropy (cardinalities and `f64` bit patterns), so a
/// multiplicative mix beats SipHash by an order of magnitude here.
#[derive(Debug, Default)]
struct YaoKeyHasher(u64);

impl std::hash::Hasher for YaoKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 29;
    }
}

/// A chunk of candidates staged for batched evaluation, stored as flat
/// columns. Reusable: [`evaluate_chunk`] drains it back to empty with all
/// column capacity retained, so one `ChunkBatch` per worker amortizes to
/// zero steady-state allocation (bar the output itself).
#[derive(Debug, Default)]
pub struct ChunkBatch {
    // --- Per-candidate input columns -----------------------------------
    fragmentations: Vec<Fragmentation>,
    num_fragments: Vec<u64>,
    /// Prefix offsets into `attr_dims`/`attr_cards`; `len() + 1` entries.
    attr_offsets: Vec<u32>,
    attr_dims: Vec<DimensionId>,
    attr_cards: Vec<u64>,
    // --- Class-independent geometry (stage A). The `f64` columns the
    // arithmetic kernels read are aligned and padded (see the module
    // docs); the integer columns feed the scalar Yao gather and the
    // detail rows.
    frag_rows_avg: Vec<f64>,
    frag_rows: Vec<u64>,
    fragment_pages: Vec<u64>,
    fact_prefetch: Vec<u32>,
    scan_ms: AlignedF64Col,
    scan_ios: AlignedF64Col,
    fragment_pages_f: AlignedF64Col,
    vector_pages: Vec<u64>,
    bitmap_prefetch: Vec<u32>,
    vector_ms: AlignedF64Col,
    vector_ios: AlignedF64Col,
    vector_pages_f: AlignedF64Col,
    // --- Per-class working columns -------------------------------------
    expected_fragments: AlignedF64Col,
    residual: Vec<f64>,
    bitmap_vectors: AlignedF64Col,
    /// `1.0` = every residual predicate has a covering bitmap.
    indexable: AlignedF64Col,
    attr_bitmap: Vec<BitmapContrib>,
    /// Yao page hits per fragment, `0.0` where not indexable; the
    /// kernel's `touched` input column.
    touched: AlignedF64Col,
    // --- Yao memo: one entry per candidate, keyed on the exact bit
    // pattern of the residual row count (classes sharing a residual
    // selectivity share the curve point).
    yao_k: Vec<f64>,
    yao_hits: Vec<f64>,
    // --- Persistent Yao memo, keyed on the exact `yao_page_hits`
    // arguments `(rows, pages, k.to_bits())`. Never cleared: the
    // function is pure, so an entry stays valid across chunks, models
    // and sessions sharing this batch (one per worker thread).
    yao_memo: HashMap<(u64, u64, u64), f64, BuildHasherDefault<YaoKeyHasher>>,
    // --- Gathered Yao memo misses, SoA, in live-candidate order; padded
    // with inert `rows = 0` entries for the lane kernel.
    miss_idx: Vec<usize>,
    miss_rows: Vec<u64>,
    miss_pages: Vec<u64>,
    miss_k: Vec<f64>,
    miss_hits: Vec<f64>,
    // --- Kernel output columns (overwritten per class) -----------------
    out_use_scan: AlignedF64Col,
    out_per_fragment_ms: AlignedF64Col,
    out_busy_ms: AlignedF64Col,
    out_response_ms: AlignedF64Col,
    out_fact_pages: AlignedF64Col,
    out_bitmap_pages: AlignedF64Col,
    out_total_ios: AlignedF64Col,
    // --- Output accumulators (one `+=` term per class) -----------------
    acc_io_ms: AlignedF64Col,
    acc_response_ms: AlignedF64Col,
    acc_ios: AlignedF64Col,
    acc_pages: AlignedF64Col,
    per_query: Vec<Vec<QueryCost>>,
}

impl ChunkBatch {
    /// An empty batch; columns grow on first use and keep their capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of candidates staged.
    pub fn len(&self) -> usize {
        self.fragmentations.len()
    }

    /// Whether the batch holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.fragmentations.is_empty()
    }

    /// Stages one candidate, consuming its layout: the layout's buffers
    /// return to `scratch` and its fragmentation moves into the batch
    /// (re-emerging in the output [`CandidateCost`] without a clone).
    pub fn push(&mut self, layout: FragmentLayout, scratch: &mut LayoutScratch) {
        if self.attr_offsets.is_empty() {
            self.attr_offsets.push(0);
        }
        self.num_fragments.push(layout.num_fragments());
        for (attr, &card) in layout
            .fragmentation()
            .attributes()
            .iter()
            .zip(layout.radices())
        {
            self.attr_dims.push(attr.dimension);
            self.attr_cards.push(card);
        }
        self.attr_offsets.push(self.attr_dims.len() as u32);
        let fragmentation = layout.recycle(scratch);
        self.fragmentations.push(fragmentation);
    }

    /// Distinct Yao argument triples memoized so far — equivalently,
    /// the number of lane-kernel Yao evaluations across the batch's
    /// lifetime (each distinct triple misses exactly once, up to the
    /// memo cap). Diagnostic for sizing the steady-state miss ratio of
    /// the batched Yao stage.
    pub fn yao_memo_len(&self) -> usize {
        self.yao_memo.len()
    }

    /// Drops all staged candidates, retaining column capacity.
    pub fn clear(&mut self) {
        self.fragmentations.clear();
        self.num_fragments.clear();
        self.attr_offsets.clear();
        self.attr_dims.clear();
        self.attr_cards.clear();
        self.per_query.clear();
    }

    /// The mix-weighted accumulator columns, padded; exposed for the
    /// pad-leak test.
    #[cfg(test)]
    fn acc_columns(&self) -> [&[f64]; 4] {
        [
            &self.acc_io_ms,
            &self.acc_response_ms,
            &self.acc_ios,
            &self.acc_pages,
        ]
    }
}

/// Prices every staged candidate against every class of `tables`,
/// returning one [`CandidateCost`] per candidate in staging order and
/// draining the batch (column capacity retained for the next chunk).
///
/// Bit-identical to calling
/// [`CostModel::evaluate_layout`](crate::CostModel::evaluate_layout) on
/// each candidate with the model the tables were built from.
pub fn evaluate_chunk(tables: &CostTables, batch: &mut ChunkBatch) -> Vec<CandidateCost> {
    evaluate_chunk_with(tables, batch, PerQueryDetail::Full)
}

/// [`evaluate_chunk`] with an explicit per-class detail level; see
/// [`PerQueryDetail`]. Uses the automatically resolved kernel backend
/// ([`KernelChoice::Auto`]: the `WARLOCK_KERNEL` environment variable,
/// then CPU detection); hot paths that run many chunks resolve the
/// backend once and call [`evaluate_chunk_kernel`] instead.
pub fn evaluate_chunk_with(
    tables: &CostTables,
    batch: &mut ChunkBatch,
    detail: PerQueryDetail,
) -> Vec<CandidateCost> {
    evaluate_chunk_kernel(
        tables,
        batch,
        detail,
        KernelBackend::resolve(KernelChoice::Auto),
    )
}

/// [`evaluate_chunk_with`] on an explicitly resolved kernel backend.
/// Every backend produces bit-identical results; the choice only trades
/// instruction throughput (see [`crate::kernel`]).
pub fn evaluate_chunk_kernel(
    tables: &CostTables,
    batch: &mut ChunkBatch,
    detail: PerQueryDetail,
    backend: KernelBackend,
) -> Vec<CandidateCost> {
    evaluate_chunk_impl(tables, batch, detail, backend, None)
}

/// [`evaluate_chunk_kernel`], additionally gathering the **unweighted**
/// per-class cost rows of every candidate into `class_rows` (cleared
/// first; one `Vec<ClassCost>` per candidate, classes in mix order).
/// The rows are copied straight out of the kernel's per-class output
/// columns, so
/// [`combine_class_costs`](crate::model::combine_class_costs) over them
/// reproduces the weighted aggregates bit-for-bit under *any* share
/// vector — the basis of the advisor's re-weight-warm evaluation cache.
pub fn evaluate_chunk_rows(
    tables: &CostTables,
    batch: &mut ChunkBatch,
    detail: PerQueryDetail,
    backend: KernelBackend,
    class_rows: &mut Vec<Vec<ClassCost>>,
) -> Vec<CandidateCost> {
    evaluate_chunk_impl(tables, batch, detail, backend, Some(class_rows))
}

fn evaluate_chunk_impl(
    tables: &CostTables,
    batch: &mut ChunkBatch,
    detail: PerQueryDetail,
    backend: KernelBackend,
    mut class_rows: Option<&mut Vec<Vec<ClassCost>>>,
) -> Vec<CandidateCost> {
    let n = batch.fragmentations.len();
    if let Some(rows) = class_rows.as_deref_mut() {
        rows.clear();
        rows.resize_with(n, || Vec::with_capacity(tables.classes.len()));
    }
    if n == 0 {
        batch.clear();
        return Vec::new();
    }
    let kernel: &dyn CostKernel = backend.kernel();
    let n_padded = n.next_multiple_of(LANES);

    // --- Stage A: class-independent geometry, once per candidate -------
    batch.frag_rows_avg.clear();
    batch.frag_rows.clear();
    batch.fragment_pages.clear();
    batch.fact_prefetch.clear();
    batch.scan_ms.clear();
    batch.scan_ios.clear();
    batch.fragment_pages_f.clear();
    batch.vector_pages.clear();
    batch.bitmap_prefetch.clear();
    batch.vector_ms.clear();
    batch.vector_ios.clear();
    batch.vector_pages_f.clear();
    for i in 0..n {
        let avg = tables.fact_rows as f64 / batch.num_fragments[i] as f64;
        let rows = (avg.round() as u64).max(1);
        let pages = tables.page.pages_for_rows(rows, tables.row_bytes).max(1);
        let fact_prefetch = effective_prefetch(tables.fact_prefetch, pages);
        batch.frag_rows_avg.push(avg);
        batch.frag_rows.push(rows);
        batch.fragment_pages.push(pages);
        batch.fragment_pages_f.push(pages as f64);
        batch.fact_prefetch.push(fact_prefetch);
        batch.scan_ms.push(
            tables
                .disk
                .sequential_ms(pages, fact_prefetch, tables.page_bytes),
        );
        batch
            .scan_ios
            .push(tables.disk.sequential_ios(pages, fact_prefetch) as f64);
        let vector_pages = estimate::vector_pages(rows, tables.page);
        let bitmap_prefetch = effective_prefetch(tables.bitmap_prefetch, vector_pages);
        batch.vector_pages.push(vector_pages);
        batch.vector_pages_f.push(vector_pages as f64);
        batch.bitmap_prefetch.push(bitmap_prefetch);
        batch.vector_ms.push(tables.disk.sequential_ms(
            vector_pages,
            bitmap_prefetch,
            tables.page_bytes,
        ));
        batch
            .vector_ios
            .push(tables.disk.sequential_ios(vector_pages, bitmap_prefetch) as f64);
    }
    // Pad the kernel-facing geometry columns with inert lanes.
    batch.scan_ms.resize(n_padded, 0.0);
    batch.scan_ios.resize(n_padded, 0.0);
    batch.fragment_pages_f.resize(n_padded, 0.0);
    batch.vector_ms.resize(n_padded, 0.0);
    batch.vector_ios.resize(n_padded, 0.0);
    batch.vector_pages_f.resize(n_padded, 0.0);

    batch.yao_k.clear();
    batch.yao_k.resize(n, f64::NAN);
    batch.yao_hits.clear();
    batch.yao_hits.resize(n, 0.0);
    batch.acc_io_ms.clear();
    batch.acc_io_ms.resize(n_padded, 0.0);
    batch.acc_response_ms.clear();
    batch.acc_response_ms.resize(n_padded, 0.0);
    batch.acc_ios.clear();
    batch.acc_ios.resize(n_padded, 0.0);
    batch.acc_pages.clear();
    batch.acc_pages.resize(n_padded, 0.0);
    batch.out_use_scan.clear();
    batch.out_use_scan.resize(n_padded, 0.0);
    batch.out_per_fragment_ms.clear();
    batch.out_per_fragment_ms.resize(n_padded, 0.0);
    batch.out_busy_ms.clear();
    batch.out_busy_ms.resize(n_padded, 0.0);
    batch.out_response_ms.clear();
    batch.out_response_ms.resize(n_padded, 0.0);
    batch.out_fact_pages.clear();
    batch.out_fact_pages.resize(n_padded, 0.0);
    batch.out_bitmap_pages.clear();
    batch.out_bitmap_pages.resize(n_padded, 0.0);
    batch.out_total_ios.clear();
    batch.out_total_ios.resize(n_padded, 0.0);
    batch.per_query.clear();
    if detail == PerQueryDetail::Full {
        batch
            .per_query
            .resize_with(n, || Vec::with_capacity(tables.classes.len()));
    }

    // Hoisted response-model constants — pre-clamped exactly as the
    // scalar `estimated_response_ms` clamps them, so no bits change.
    let disks = f64::from(tables.num_disks.max(1));
    let processors = f64::from(tables.processors.max(1));
    let overhead = tables.overhead.max(1.0);

    for class in &tables.classes {
        // --- Matching pass: predicates → table entries -----------------
        batch.expected_fragments.clear();
        batch.residual.clear();
        batch.bitmap_vectors.clear();
        batch.indexable.clear();
        for i in 0..n {
            let s = batch.attr_offsets[i] as usize;
            let e = batch.attr_offsets[i + 1] as usize;
            let dims = &batch.attr_dims[s..e];
            let cards = &batch.attr_cards[s..e];
            batch.attr_bitmap.clear();
            let mut expected_fragments = 1.0f64;
            let mut residual = 1.0f64;
            for (&dim, &card) in dims.iter().zip(cards) {
                match class.pred_for(dim) {
                    None => {
                        expected_fragments *= card as f64;
                        batch.attr_bitmap.push(BitmapContrib::Resolved);
                    }
                    Some(pred) => {
                        let entry = pred.entry_for(card);
                        expected_fragments *= entry.matched;
                        residual *= entry.residual_factor;
                        batch.attr_bitmap.push(entry.bitmap);
                    }
                }
            }
            // Residual of unfragmented referenced dimensions, and the
            // bitmap vector count, both in predicate (dimension) order —
            // matching the scalar path's iteration exactly.
            let mut bitmap_vectors = 0.0f64;
            let mut indexable = true;
            for pred in &class.preds {
                let contrib = match dims.iter().position(|&d| d == pred.dimension) {
                    Some(j) => batch.attr_bitmap[j],
                    None => {
                        residual *= pred.residual_unfragmented;
                        pred.unfragmented_bitmap
                    }
                };
                if indexable {
                    match contrib {
                        BitmapContrib::Resolved => {}
                        BitmapContrib::Vectors(v) => bitmap_vectors += v,
                        BitmapContrib::Unindexable => indexable = false,
                    }
                }
            }
            batch.expected_fragments.push(expected_fragments);
            batch.residual.push(residual.min(1.0));
            batch.bitmap_vectors.push(bitmap_vectors);
            batch.indexable.push(if indexable { 1.0 } else { 0.0 });
        }
        batch.expected_fragments.resize(n_padded, 0.0);
        batch.bitmap_vectors.resize(n_padded, 0.0);
        batch.indexable.resize(n_padded, 0.0);

        // --- Yao stage: resolve touched pages per fragment through the
        // per-candidate and persistent memos (scalar gather over the
        // live prefix, in candidate order), batching the memo misses
        // for one lane-kernel call. Misses are re-applied and inserted
        // in gather order, so the memo ends in exactly the state the
        // scalar path leaves it in (a key missed twice in one gather
        // recomputes the same bits — `yao_page_hits` is pure).
        batch.touched.clear();
        batch.touched.resize(n_padded, 0.0);
        batch.miss_idx.clear();
        batch.miss_rows.clear();
        batch.miss_pages.clear();
        batch.miss_k.clear();
        for i in 0..n {
            if batch.indexable[i] == 0.0 {
                // The scan path never consults the bitmap estimate.
                continue;
            }
            let k = batch.frag_rows_avg[i] * batch.residual[i];
            if batch.yao_k[i].to_bits() == k.to_bits() {
                batch.touched[i] = batch.yao_hits[i];
                continue;
            }
            let rows = batch.frag_rows[i];
            let pages = batch.fragment_pages[i];
            match batch.yao_memo.get(&(rows, pages, k.to_bits())) {
                Some(&hits) => {
                    batch.yao_k[i] = k;
                    batch.yao_hits[i] = hits;
                    batch.touched[i] = hits;
                }
                None => {
                    batch.miss_idx.push(i);
                    batch.miss_rows.push(rows);
                    batch.miss_pages.push(pages);
                    batch.miss_k.push(k);
                }
            }
        }
        let misses = batch.miss_idx.len();
        if misses > 0 {
            let m_padded = misses.next_multiple_of(LANES);
            batch.miss_rows.resize(m_padded, 0);
            batch.miss_pages.resize(m_padded, 0);
            batch.miss_k.resize(m_padded, 0.0);
            batch.miss_hits.clear();
            batch.miss_hits.resize(m_padded, 0.0);
            kernel.yao_pass(
                &batch.miss_rows,
                &batch.miss_pages,
                &batch.miss_k,
                &mut batch.miss_hits,
            );
            for j in 0..misses {
                let i = batch.miss_idx[j];
                let hits = batch.miss_hits[j];
                if batch.yao_memo.len() < YAO_MEMO_CAP {
                    batch.yao_memo.insert(
                        (
                            batch.miss_rows[j],
                            batch.miss_pages[j],
                            batch.miss_k[j].to_bits(),
                        ),
                        hits,
                    );
                }
                batch.yao_k[i] = batch.miss_k[j];
                batch.yao_hits[i] = hits;
                batch.touched[i] = hits;
            }
        }

        // --- Arithmetic pass: the backend kernel, elementwise ----------
        let inp = CostPassInput {
            fragments: &batch.expected_fragments,
            touched: &batch.touched,
            indexable: &batch.indexable,
            scan_ms: &batch.scan_ms,
            scan_ios: &batch.scan_ios,
            fragment_pages: &batch.fragment_pages_f,
            vector_ms: &batch.vector_ms,
            vector_ios: &batch.vector_ios,
            vector_pages: &batch.vector_pages_f,
            bitmap_vectors: &batch.bitmap_vectors,
            random_page_ms: tables.random_page_ms,
            disks,
            processors,
            overhead,
            share: class.share,
        };
        let mut out = CostPassOutput {
            out_use_scan: &mut batch.out_use_scan,
            out_per_fragment_ms: &mut batch.out_per_fragment_ms,
            out_busy_ms: &mut batch.out_busy_ms,
            out_response_ms: &mut batch.out_response_ms,
            out_fact_pages: &mut batch.out_fact_pages,
            out_bitmap_pages: &mut batch.out_bitmap_pages,
            out_total_ios: &mut batch.out_total_ios,
            acc_io_ms: &mut batch.acc_io_ms,
            acc_response_ms: &mut batch.acc_response_ms,
            acc_ios: &mut batch.acc_ios,
            acc_pages: &mut batch.acc_pages,
        };
        kernel.cost_pass(&inp, &mut out);

        // Gather the unweighted per-class rows before the next class
        // overwrites the output columns. `pages` performs the same
        // `fact + bitmap` add the kernels feed their accumulators, so
        // recombination reproduces `acc_pages` bit-for-bit.
        if let Some(rows) = class_rows.as_deref_mut() {
            for (i, row) in rows.iter_mut().enumerate() {
                row.push(ClassCost {
                    busy_ms: batch.out_busy_ms[i],
                    response_ms: batch.out_response_ms[i],
                    total_ios: batch.out_total_ios[i],
                    pages: batch.out_fact_pages[i] + batch.out_bitmap_pages[i],
                });
            }
        }

        if detail == PerQueryDetail::Omit {
            continue;
        }
        for i in 0..n {
            batch.per_query[i].push(QueryCost {
                query_name: class.name.clone(),
                path: if batch.out_use_scan[i] != 0.0 {
                    AccessPath::FullScan
                } else {
                    AccessPath::BitmapFetch
                },
                fragments_accessed: batch.expected_fragments[i],
                fragment_pages: batch.fragment_pages[i],
                fact_pages: batch.out_fact_pages[i],
                bitmap_pages: batch.out_bitmap_pages[i],
                total_ios: batch.out_total_ios[i],
                busy_ms: batch.out_busy_ms[i],
                per_fragment_ms: batch.out_per_fragment_ms[i],
                response_ms: batch.out_response_ms[i],
                fact_prefetch: batch.fact_prefetch[i],
                bitmap_prefetch: batch.bitmap_prefetch[i],
                selected_rows: class.selected_rows,
            });
        }
    }

    // --- Finalize: move fragmentations and per-query details out -------
    let mut out = Vec::with_capacity(n);
    for (i, fragmentation) in batch.fragmentations.drain(..).enumerate() {
        out.push(CandidateCost {
            fragmentation,
            num_fragments: batch.num_fragments[i],
            io_cost_ms: batch.acc_io_ms[i],
            response_ms: batch.acc_response_ms[i],
            total_ios: batch.acc_ios[i],
            total_pages: batch.acc_pages[i],
            per_query: match detail {
                PerQueryDetail::Full => std::mem::take(&mut batch.per_query[i]),
                PerQueryDetail::Omit => Vec::new(),
            },
        });
    }
    batch.clear();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModel;
    use warlock_bitmap::{BitmapScheme, SchemeConfig};
    use warlock_schema::{apb1_like_schema, Apb1Config, StarSchema};
    use warlock_storage::SystemConfig;
    use warlock_workload::{apb1_like_mix, QueryMix};

    struct Fixture {
        schema: StarSchema,
        system: SystemConfig,
        scheme: BitmapScheme,
        mix: QueryMix,
    }

    fn fixture() -> Fixture {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        let system = SystemConfig::default_2001(16);
        Fixture {
            schema,
            system,
            scheme,
            mix,
        }
    }

    fn candidates() -> Vec<Fragmentation> {
        vec![
            Fragmentation::none(),
            Fragmentation::from_pairs(&[(2, 2)]).unwrap(),
            Fragmentation::from_pairs(&[(0, 4), (2, 2)]).unwrap(),
            Fragmentation::from_pairs(&[(3, 0)]).unwrap(),
            Fragmentation::from_ranged_pairs(&[(2, 2, 3), (3, 0, 1)]).unwrap(),
            Fragmentation::from_pairs(&[(0, 1), (1, 0), (2, 1)]).unwrap(),
        ]
    }

    #[test]
    fn chunk_matches_scalar_bit_for_bit() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let tables = CostTables::build(&model, &[3]);
        let mut scratch = LayoutScratch::new();
        let mut batch = ChunkBatch::new();
        for frag in candidates() {
            let layout = FragmentLayout::new_in(&mut scratch, &f.schema, frag, model.fact_index());
            batch.push(layout, &mut scratch);
        }
        let batched = evaluate_chunk(&tables, &mut batch);
        assert!(batch.is_empty(), "evaluate_chunk must drain the batch");
        let scalar: Vec<_> = candidates()
            .iter()
            .map(|frag| model.evaluate(frag))
            .collect();
        assert_eq!(batched.len(), scalar.len());
        for (b, s) in batched.iter().zip(&scalar) {
            assert_eq!(b, s);
            assert_eq!(b.io_cost_ms.to_bits(), s.io_cost_ms.to_bits());
            assert_eq!(b.response_ms.to_bits(), s.response_ms.to_bits());
            assert_eq!(b.total_ios.to_bits(), s.total_ios.to_bits());
            assert_eq!(b.total_pages.to_bits(), s.total_pages.to_bits());
            for (bq, sq) in b.per_query.iter().zip(&s.per_query) {
                assert_eq!(bq.busy_ms.to_bits(), sq.busy_ms.to_bits());
                assert_eq!(bq.response_ms.to_bits(), sq.response_ms.to_bits());
                assert_eq!(bq.selected_rows.to_bits(), sq.selected_rows.to_bits());
            }
        }
    }

    #[test]
    fn every_backend_matches_scalar_bit_for_bit() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let tables = CostTables::build(&model, &[3]);
        let scalar: Vec<_> = candidates()
            .iter()
            .map(|frag| model.evaluate(frag))
            .collect();
        for backend in [
            KernelBackend::Scalar,
            KernelBackend::Lanes,
            KernelBackend::detect(),
        ] {
            let mut scratch = LayoutScratch::new();
            let mut batch = ChunkBatch::new();
            for frag in candidates() {
                let layout =
                    FragmentLayout::new_in(&mut scratch, &f.schema, frag, model.fact_index());
                batch.push(layout, &mut scratch);
            }
            let batched = evaluate_chunk_kernel(&tables, &mut batch, PerQueryDetail::Full, backend);
            assert_eq!(batched.len(), scalar.len());
            for (b, s) in batched.iter().zip(&scalar) {
                assert_eq!(b, s, "backend {}", backend.name());
                assert_eq!(b.io_cost_ms.to_bits(), s.io_cost_ms.to_bits());
                assert_eq!(b.response_ms.to_bits(), s.response_ms.to_bits());
                assert_eq!(b.total_ios.to_bits(), s.total_ios.to_bits());
                assert_eq!(b.total_pages.to_bits(), s.total_pages.to_bits());
            }
        }
    }

    #[test]
    fn padded_tail_lanes_stay_inert() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let tables = model.tables();
        for backend in [
            KernelBackend::Scalar,
            KernelBackend::Lanes,
            KernelBackend::detect(),
        ] {
            let mut scratch = LayoutScratch::new();
            let mut batch = ChunkBatch::new();
            // Deliberately ragged sizes (1, 2, 3, 5, 6) so every pad
            // width short of a full block occurs.
            for take in [1usize, 2, 3, 5, 6] {
                let frags: Vec<_> = candidates().into_iter().take(take).collect();
                for frag in frags.clone() {
                    let layout =
                        FragmentLayout::new_in(&mut scratch, &f.schema, frag, model.fact_index());
                    batch.push(layout, &mut scratch);
                }
                let memo_before = batch.yao_memo.len();
                let costs =
                    evaluate_chunk_kernel(&tables, &mut batch, PerQueryDetail::Full, backend);
                // Results: exactly one per live candidate, scalar-equal.
                assert_eq!(costs.len(), take);
                for (b, frag) in costs.iter().zip(&frags) {
                    assert_eq!(b, &model.evaluate(frag), "backend {}", backend.name());
                }
                // Pad lanes never accumulate: every accumulator slot
                // past the live prefix is exactly +0.0.
                let n_padded = take.next_multiple_of(LANES);
                for col in batch.acc_columns() {
                    assert_eq!(col.len(), n_padded);
                    for (i, v) in col.iter().enumerate().skip(take) {
                        assert_eq!(
                            v.to_bits(),
                            0.0f64.to_bits(),
                            "backend {}: pad lane {i} leaked into an accumulator",
                            backend.name()
                        );
                    }
                }
                // Pad lanes never touch the Yao memo: the first round
                // populates it from live candidates only, and re-running
                // the same candidates adds nothing (inert `rows = 0`
                // pads would have inserted `(0, 0, 0)` keys).
                assert!(!batch.yao_memo.contains_key(&(0, 0, 0.0f64.to_bits())));
                let _ = memo_before; // growth is expected; leakage is not
            }
        }
    }

    #[test]
    fn batch_reuse_across_chunks_is_clean() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let tables = model.tables();
        let mut scratch = LayoutScratch::new();
        let mut batch = ChunkBatch::new();
        // Two rounds over the same batch: wide chunk first, then a
        // single-candidate chunk — stale columns must not leak.
        for round in 0..2 {
            let frags = if round == 0 {
                candidates()
            } else {
                vec![Fragmentation::from_pairs(&[(2, 1)]).unwrap()]
            };
            for frag in frags.clone() {
                let layout =
                    FragmentLayout::new_in(&mut scratch, &f.schema, frag, model.fact_index());
                batch.push(layout, &mut scratch);
            }
            let batched = evaluate_chunk(&tables, &mut batch);
            for (b, frag) in batched.iter().zip(&frags) {
                assert_eq!(b, &model.evaluate(frag), "round {round}");
            }
        }
    }

    #[test]
    fn omitted_detail_keeps_aggregates_bit_identical() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let tables = CostTables::build(&model, &[3]);
        let mut scratch = LayoutScratch::new();
        let mut batch = ChunkBatch::new();
        for frag in candidates() {
            let layout = FragmentLayout::new_in(&mut scratch, &f.schema, frag, model.fact_index());
            batch.push(layout, &mut scratch);
        }
        let lean = evaluate_chunk_with(&tables, &mut batch, PerQueryDetail::Omit);
        for (l, frag) in lean.iter().zip(candidates()) {
            let s = model.evaluate(&frag);
            assert!(l.per_query.is_empty());
            assert_eq!(l.io_cost_ms.to_bits(), s.io_cost_ms.to_bits());
            assert_eq!(l.response_ms.to_bits(), s.response_ms.to_bits());
            assert_eq!(l.total_ios.to_bits(), s.total_ios.to_bits());
            assert_eq!(l.total_pages.to_bits(), s.total_pages.to_bits());
            assert_eq!(l.fragmentation, s.fragmentation);
        }
        // Interleaving detail levels over the same batch (and its
        // persistent Yao memo) must not perturb the full output.
        for frag in candidates() {
            let layout = FragmentLayout::new_in(&mut scratch, &f.schema, frag, model.fact_index());
            batch.push(layout, &mut scratch);
        }
        let full = evaluate_chunk(&tables, &mut batch);
        for (b, frag) in full.iter().zip(candidates()) {
            assert_eq!(b, &model.evaluate(&frag));
        }
    }

    #[test]
    fn gathered_class_rows_recombine_bit_identically_under_any_weights() {
        use crate::model::combine_class_costs;
        use warlock_workload::QueryMix;

        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let tables = CostTables::build(&model, &[3]);
        // Re-weight the same classes: structure identical, shares not.
        let mut builder = QueryMix::builder();
        for (i, w) in f.mix.classes().iter().enumerate() {
            builder = builder.class(w.class.clone(), 1.0 + (i as f64) * 2.5);
        }
        let reweighted = builder.build().unwrap();
        assert_eq!(
            model.structure_fingerprint(),
            CostModel::new(&f.schema, &f.system, &f.scheme, &reweighted).structure_fingerprint(),
            "a pure re-weight must keep the structure fingerprint"
        );
        assert_ne!(
            model.fingerprint(),
            CostModel::new(&f.schema, &f.system, &f.scheme, &reweighted).fingerprint()
        );

        for backend in [
            KernelBackend::Scalar,
            KernelBackend::Lanes,
            KernelBackend::detect(),
        ] {
            let mut scratch = LayoutScratch::new();
            let mut batch = ChunkBatch::new();
            for frag in candidates() {
                let layout =
                    FragmentLayout::new_in(&mut scratch, &f.schema, frag, model.fact_index());
                batch.push(layout, &mut scratch);
            }
            let mut rows = Vec::new();
            let costs = evaluate_chunk_rows(
                &tables,
                &mut batch,
                PerQueryDetail::Omit,
                backend,
                &mut rows,
            );
            assert_eq!(rows.len(), costs.len());
            for (mix, model_at) in [
                (&f.mix, &model),
                (
                    &reweighted,
                    &CostModel::new(&f.schema, &f.system, &f.scheme, &reweighted),
                ),
            ] {
                let shares: Vec<f64> = mix.iter().map(|(_, s)| s).collect();
                for (c, row) in costs.iter().zip(&rows) {
                    assert_eq!(row.len(), mix.len());
                    let combined =
                        combine_class_costs(c.fragmentation.clone(), c.num_fragments, row, &shares);
                    let fresh = model_at.evaluate(&c.fragmentation);
                    assert_eq!(
                        combined.io_cost_ms.to_bits(),
                        fresh.io_cost_ms.to_bits(),
                        "backend {}",
                        backend.name()
                    );
                    assert_eq!(combined.response_ms.to_bits(), fresh.response_ms.to_bits());
                    assert_eq!(combined.total_ios.to_bits(), fresh.total_ios.to_bits());
                    assert_eq!(combined.total_pages.to_bits(), fresh.total_pages.to_bits());
                    assert_eq!(combined.num_fragments, fresh.num_fragments);
                }
            }
        }
    }

    #[test]
    fn structure_fingerprint_tracks_structural_changes_only() {
        let f = fixture();
        let base = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        // Dropping a class is structural.
        let smaller = f
            .mix
            .without_class(f.mix.classes()[0].class.name())
            .unwrap();
        assert_ne!(
            base.structure_fingerprint(),
            CostModel::new(&f.schema, &f.system, &f.scheme, &smaller).structure_fingerprint()
        );
        // So is a system change.
        let mut other_system = f.system;
        other_system.num_disks += 1;
        assert_ne!(
            base.structure_fingerprint(),
            CostModel::new(&f.schema, &other_system, &f.scheme, &f.mix).structure_fingerprint()
        );
        // And it is deterministic.
        assert_eq!(
            base.structure_fingerprint(),
            CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix).structure_fingerprint()
        );
    }

    #[test]
    fn empty_chunk_is_a_noop() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let tables = model.tables();
        let mut batch = ChunkBatch::new();
        assert!(evaluate_chunk(&tables, &mut batch).is_empty());
    }
}
