//! Property tests: analytical cost-model invariants.

use proptest::prelude::*;

use warlock_bitmap::{BitmapScheme, SchemeConfig};
use warlock_cost::access::estimate_query;
use warlock_cost::{contention_estimate, LoadPoint};
use warlock_fragment::{FragmentLayout, Fragmentation};
use warlock_schema::{apb1_like_schema, Apb1Config, StarSchema};
use warlock_storage::SystemConfig;
use warlock_workload::{apb1_like_mix, DimensionPredicate, QueryClass, QueryMix};

fn fixture() -> (StarSchema, QueryMix, BitmapScheme) {
    let schema = apb1_like_schema(Apb1Config::default()).unwrap();
    let mix = apb1_like_mix().unwrap();
    let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
    (schema, mix, scheme)
}

/// A random valid candidate with bounded fragment counts.
fn arb_candidate() -> impl Strategy<Value = Fragmentation> {
    (
        proptest::option::of(0u16..6),
        proptest::option::of(0u16..2),
        proptest::option::of(0u16..3),
        proptest::option::of(0u16..1),
    )
        .prop_map(|(p, c, t, ch)| {
            let mut pairs = Vec::new();
            if let Some(l) = p {
                pairs.push((0u16, l));
            }
            if let Some(l) = c {
                pairs.push((1u16, l));
            }
            if let Some(l) = t {
                pairs.push((2u16, l));
            }
            if let Some(l) = ch {
                pairs.push((3u16, l));
            }
            Fragmentation::from_pairs(&pairs).unwrap()
        })
        .prop_filter("bounded fragment count", |f| {
            f.num_fragments(&apb1_like_schema(Apb1Config::default()).unwrap()) <= 1 << 18
        })
}

/// A random query class over the APB-1-like schema.
fn arb_class() -> impl Strategy<Value = QueryClass> {
    (0usize..4, 0u16..6, 1u64..4).prop_map(|(dim, level_seed, values)| {
        let levels = [6u16, 2, 3, 1];
        let cards: [&[u64]; 4] = [&[5, 15, 75, 300, 900, 9000], &[90, 900], &[2, 8, 24], &[9]];
        let level = level_seed % levels[dim];
        let card = cards[dim][level as usize];
        QueryClass::new("prop").with(
            dim as u16,
            DimensionPredicate::range(level, values.min(card)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn estimate_invariants(frag in arb_candidate(), class in arb_class(), disks in 1u32..64) {
        let (schema, _, scheme) = fixture();
        let system = SystemConfig::default_2001(disks);
        let layout = FragmentLayout::new(&schema, frag, 0);
        let qc = estimate_query(&schema, &layout, &scheme, &system, &class, 0);
        // Everything non-negative and finite.
        prop_assert!(qc.busy_ms.is_finite() && qc.busy_ms > 0.0);
        prop_assert!(qc.response_ms.is_finite() && qc.response_ms > 0.0);
        prop_assert!(qc.total_ios >= 0.0 && qc.fact_pages >= 0.0 && qc.bitmap_pages >= 0.0);
        // Response never exceeds total busy time (parallelism only helps)
        // and never beats busy/disks (can't out-parallelize the hardware).
        prop_assert!(qc.response_ms <= qc.busy_ms * 1.0000001);
        prop_assert!(qc.response_ms * f64::from(disks) >= qc.busy_ms * 0.999);
        // Accessed fragments bounded by the layout.
        prop_assert!(qc.fragments_accessed >= 1.0 - 1e-9);
        prop_assert!(qc.fragments_accessed <= layout.num_fragments() as f64 + 1e-6);
        // Pages are bounded by a full scan of accessed fragments.
        prop_assert!(
            qc.fact_pages <= qc.fragments_accessed * qc.fragment_pages as f64 * 1.0000001
        );
    }

    #[test]
    fn more_disks_never_hurt_response(frag in arb_candidate(), class in arb_class()) {
        let (schema, _, scheme) = fixture();
        let layout = FragmentLayout::new(&schema, frag, 0);
        let mut prev = f64::INFINITY;
        for disks in [1u32, 4, 16, 64] {
            let system = SystemConfig::default_2001(disks);
            let qc = estimate_query(&schema, &layout, &scheme, &system, &class, 0);
            prop_assert!(qc.response_ms <= prev * 1.0000001);
            prev = qc.response_ms;
        }
    }

    #[test]
    fn busy_time_is_disk_count_invariant(frag in arb_candidate(), class in arb_class()) {
        let (schema, _, scheme) = fixture();
        let layout = FragmentLayout::new(&schema, frag, 0);
        let a = estimate_query(&schema, &layout, &scheme, &SystemConfig::default_2001(4), &class, 0);
        let b = estimate_query(&schema, &layout, &scheme, &SystemConfig::default_2001(32), &class, 0);
        prop_assert!((a.busy_ms - b.busy_ms).abs() < 1e-9);
        prop_assert!((a.total_ios - b.total_ios).abs() < 1e-9);
    }

    #[test]
    fn contention_inflation_is_monotone_in_load(
        response in 1.0f64..1000.0,
        busy in 1.0f64..5000.0,
        disks in 1u32..64,
    ) {
        let mut prev = 0.0;
        for i in 0..10 {
            let rate = i as f64 * 1000.0 * f64::from(disks) / busy / 12.0;
            let est = contention_estimate(response, busy, disks, LoadPoint { arrivals_per_s: rate });
            prop_assert!(est.response_ms >= prev - 1e-9);
            prev = est.response_ms;
        }
    }
}
