//! The [`Json`] value type and its serializer.

use std::fmt;

use crate::parse::JsonError;

/// A JSON document. Object member order is preserved (reports render
/// fields in a stable, documented order).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact integer (serialized without a fraction).
    Int(i64),
    /// A double-precision number. Non-finite values serialize as `null`
    /// (JSON has no NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with preserved member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required object member, with a path-bearing error.
    pub fn req(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::shape(format!("missing object member `{key}`")))
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as `i64` (exact integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `u64` (exact non-negative integers only; floats
    /// outside the `u64` range are rejected, never saturated).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            // `u64::MAX as f64` rounds up to 2^64 exactly, so `<` admits
            // every representable in-range float and nothing above.
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Json::Num(n) => write_f64(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                if !members.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's `Display` for f64 prints the shortest decimal that parses
    // back to the same bits, so serialize → parse round-trips exactly.
    let s = format!("{n}");
    out.push_str(&s);
    // Keep the float/integer distinction on the wire so `1.0` does not
    // come back as `Json::Int(1)`.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Json::object([
            ("a", Json::Int(1)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c", Json::Str("x\"y".into())),
        ]);
        assert_eq!(v.render(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
        assert!(v.pretty().contains("\n  \"a\": 1"));
    }

    #[test]
    fn floats_keep_their_kind() {
        assert_eq!(Json::Num(1.0).render(), "1.0");
        assert_eq!(Json::Num(0.1).render(), "0.1");
        assert_eq!(Json::Int(1).render(), "1");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn as_u64_rejects_out_of_range_floats() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(1e300).as_u64(), None);
        assert_eq!(Json::Num(1.8446744073709552e19).as_u64(), None); // 2^64
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_u64(), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }

    #[test]
    fn object_lookup() {
        let v = Json::object([("k", Json::Int(7))]);
        assert_eq!(v.get("k").and_then(Json::as_i64), Some(7));
        assert!(v.get("missing").is_none());
        assert!(v.req("missing").is_err());
    }
}
