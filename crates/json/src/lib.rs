//! Dependency-free JSON for WARLOCK reports.
//!
//! The workspace builds in environments without crates.io access, so it
//! cannot depend on `serde`/`serde_json`. This crate provides the small
//! JSON kernel the advisory service needs: an order-preserving value
//! type ([`Json`]), a serializer (compact and pretty), a strict parser,
//! and the [`ToJson`]/[`FromJson`] conversion traits reports implement.
//!
//! Numbers are split into [`Json::Int`] (exact `i64`) and [`Json::Num`]
//! (`f64`) so counters survive round-trips bit-exactly; floats rely on
//! Rust's shortest round-trip `Display` formatting.

#![warn(missing_docs)]

pub mod parse;
pub mod value;

pub use parse::{parse, JsonError};
pub use value::Json;

/// Types that can serialize themselves into a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Types that can reconstruct themselves from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parses `value` into `Self`, reporting the offending path on error.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

macro_rules! to_json_ints {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

to_json_ints!(i8, i16, i32, i64, u8, u16, u32, usize);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        if let Ok(i) = i64::try_from(*self) {
            Json::Int(i)
        } else {
            Json::Num(*self as f64)
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_conversions() {
        assert_eq!(42u32.to_json(), Json::Int(42));
        assert_eq!(u64::MAX.to_json(), Json::Num(u64::MAX as f64));
        assert_eq!((-3i64).to_json(), Json::Int(-3));
        assert_eq!(true.to_json(), Json::Bool(true));
        assert_eq!("x".to_json(), Json::Str("x".into()));
        assert_eq!(None::<u32>.to_json(), Json::Null);
        assert_eq!(
            vec![1u32, 2].to_json(),
            Json::Arr(vec![Json::Int(1), Json::Int(2)])
        );
    }
}
