//! A strict recursive-descent JSON parser.

use std::fmt;

use crate::value::Json;

/// A parse or shape error, with byte offset for syntax errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input (`None` for shape errors raised
    /// while converting a parsed document into a typed report).
    pub offset: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset: Some(offset),
            message: message.into(),
        }
    }

    /// A structural error without a byte position (missing member, wrong
    /// type) raised by [`crate::FromJson`] implementations.
    pub fn shape(message: impl Into<String>) -> Self {
        Self {
            offset: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(offset) => write!(f, "json: {} at byte {offset}", self.message),
            None => write!(f, "json: {}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::at(p.pos, "trailing characters"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(self.pos, format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at(self.pos, "nesting too deep"));
        }
        match self.peek() {
            None => Err(JsonError::at(self.pos, "unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::at(
                self.pos,
                format!("unexpected character `{}`", other as char),
            )),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, format!("expected `{text}`")))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(JsonError::at(self.pos, "expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(JsonError::at(start, "invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::at(self.pos, "control character in string"));
                }
                Some(b) => {
                    // Advance one full UTF-8 scalar. The input arrived as
                    // &str, so it is valid UTF-8 by construction: the
                    // leading byte alone determines the scalar's width
                    // (no per-character revalidation of the remainder).
                    let width = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + width])
                        .map_err(|_| JsonError::at(self.pos, "invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += width;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&hi) {
            // Surrogate pair: require a following \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c)
                        .ok_or_else(|| JsonError::at(self.pos, "invalid surrogate pair"));
                }
            }
            return Err(JsonError::at(self.pos, "lone surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| JsonError::at(self.pos, "invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| JsonError::at(self.pos, "truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| JsonError::at(self.pos, "bad hex digit"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at(start, "invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::at(start, format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse("1.5e3").unwrap(), Json::Num(1500.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn long_multibyte_strings_parse_in_one_pass() {
        // Regression: string scanning must not revalidate the remaining
        // input per character (O(n²)); a large mixed-width string should
        // parse instantly and round-trip exactly.
        let body: String = "naïve → 統計 😀 plain ascii ".repeat(4_000);
        let doc = format!("{{\"s\":{}}}", Json::Str(body.clone()).render());
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(body.as_str()));
    }

    #[test]
    fn round_trips() {
        let cases = [
            r#"{"a":1,"b":[true,null,0.5],"c":"x\"y","d":{"e":[]}}"#,
            "[]",
            "{}",
            r#"[1,2.0,-3,1e300]"#,
        ];
        for case in cases {
            let v = parse(case).unwrap();
            let rendered = v.render();
            assert_eq!(parse(&rendered).unwrap(), v, "case {case}");
        }
    }
}
