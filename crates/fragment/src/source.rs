//! Lazy, resumable enumeration of fragmentation candidates.
//!
//! The prediction pipeline used to materialize the whole candidate
//! space (`Vec<Fragmentation>`) before evaluating anything, which makes
//! memory and start-up latency O(candidate space) — exactly wrong for
//! the deep hierarchies and ranged enumeration where WARLOCK should
//! shine. [`CandidateSource`] generates the same candidates **in the
//! same order** one at a time, so a streaming pipeline can pull
//! fixed-size chunks and keep memory bounded by the chunk size.
//!
//! One odometer engine drives both generators:
//!
//! * **point** candidates (range size 1 everywhere, the paper's §3.2
//!   evaluation space) — for each dimension the digit is "unused" or
//!   one of its levels, pruned to at most `max_dimensionality` used
//!   dimensions;
//! * **ranged** candidates (the general-MDHF extension) — every point
//!   candidate is additionally crossed with each admissible range size
//!   per attribute (sizes from `range_options` that divide the level's
//!   fan-out, the full fan-out excluded as it duplicates the parent
//!   level).
//!
//! The enumeration order is identical to the historical recursive
//! `enumerate_candidates` / `enumerate_candidates_ranged`: dimension 0
//! is the most significant digit, "unused" sorts before the levels, and
//! range counters spin fastest on the last attribute. Reports built on
//! either path are therefore bit-identical.
//!
//! [`space_size`](CandidateSource::space_size) predicts the exact
//! number of candidates without generating any (a per-dimension
//! dynamic program over the used-dimension count), and
//! [`cursor`](CandidateSource::cursor)/[`resume`](CandidateSource::resume)
//! snapshot and restore the generator state, so enumeration can be
//! paused, persisted and continued elsewhere.

use warlock_schema::{LevelRef, StarSchema};

use crate::candidate::{CandidateError, Fragmentation};

/// A snapshot of a [`CandidateSource`]'s position: everything needed to
/// continue the enumeration where it stopped. Obtained from
/// [`CandidateSource::cursor`] and consumed by
/// [`CandidateSource::resume`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateCursor {
    /// Per-dimension digit: `None` = dimension unused, `Some(level)`.
    choices: Vec<Option<u16>>,
    /// Range-size counter per *used* dimension, in dimension order.
    range_counters: Vec<usize>,
    /// Candidates emitted so far.
    emitted: u64,
    /// Whether the stream already ran dry.
    exhausted: bool,
    /// Whether the very first candidate (the baseline) was emitted.
    started: bool,
}

impl CandidateCursor {
    /// Number of candidates emitted before this cursor position.
    #[inline]
    pub fn position(&self) -> u64 {
        self.emitted
    }
}

/// A lazy generator over the fragmentation-candidate space of one
/// schema. Self-contained after construction (it captures the level
/// shape, not the schema), so it can outlive the schema borrow it was
/// built from. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct CandidateSource {
    max_dimensionality: usize,
    /// Admissible range sizes per `(dimension, level)`, smallest list
    /// `[1]` for point enumeration. `sizes[d][l][0]` is always `1`.
    sizes: Vec<Vec<Vec<u64>>>,
    cursor: CandidateCursor,
    space: u128,
}

impl CandidateSource {
    /// A source over every *point* candidate (range size 1), the
    /// paper's default evaluation space. Same candidates and order as
    /// [`crate::enumerate_candidates`].
    pub fn point(schema: &StarSchema, max_dimensionality: usize) -> Self {
        Self::ranged(schema, max_dimensionality, &[])
    }

    /// A source over the ranged candidate space: every point candidate
    /// crossed with each admissible range size from `range_options`.
    /// Same candidates and order as
    /// [`crate::enumerate_candidates_ranged`]; an empty option list
    /// degenerates to the point space.
    pub fn ranged(schema: &StarSchema, max_dimensionality: usize, range_options: &[u64]) -> Self {
        let sizes: Vec<Vec<Vec<u64>>> = schema
            .dimensions()
            .iter()
            .map(|dim| {
                (0..dim.depth())
                    .map(|level| {
                        let fanout = dim
                            .fanout(warlock_schema::LevelId(level as u16))
                            .expect("level exists");
                        let mut sizes = vec![1u64];
                        for &opt in range_options {
                            if opt > 1 && opt < fanout && fanout.is_multiple_of(opt) {
                                sizes.push(opt);
                            }
                        }
                        sizes
                    })
                    .collect()
            })
            .collect();
        let space = predict_space(&sizes, max_dimensionality);
        Self {
            max_dimensionality,
            sizes,
            cursor: CandidateCursor {
                choices: vec![None; schema.num_dimensions()],
                range_counters: Vec::new(),
                emitted: 0,
                exhausted: false,
                started: false,
            },
            space,
        }
    }

    /// Continues an enumeration from a saved [`CandidateCursor`]. The
    /// source must be rebuilt with the **same** schema, dimensionality
    /// cap and range options the cursor was taken under; a cursor of
    /// the wrong shape is rejected.
    ///
    /// # Errors
    ///
    /// [`CandidateError::UnknownAttribute`] when the cursor references
    /// a dimension or level the schema does not have (including a
    /// digit-count mismatch).
    pub fn resume(
        schema: &StarSchema,
        max_dimensionality: usize,
        range_options: &[u64],
        cursor: CandidateCursor,
    ) -> Result<Self, CandidateError> {
        let mut source = Self::ranged(schema, max_dimensionality, range_options);
        if cursor.choices.len() != schema.num_dimensions() {
            return Err(CandidateError::UnknownAttribute {
                level_ref: LevelRef::new(cursor.choices.len() as u16, 0),
            });
        }
        for (d, choice) in cursor.choices.iter().enumerate() {
            if let Some(level) = *choice {
                if usize::from(level) >= source.sizes[d].len() {
                    return Err(CandidateError::UnknownAttribute {
                        level_ref: LevelRef::new(d as u16, level),
                    });
                }
            }
        }
        source.cursor = cursor;
        Ok(source)
    }

    /// The exact number of candidates this source yields in total
    /// (independent of the current position), computed without
    /// generating any. Saturates at `u128::MAX` for astronomically
    /// large spaces.
    #[inline]
    pub fn space_size(&self) -> u128 {
        self.space
    }

    /// Candidates emitted so far.
    #[inline]
    pub fn position(&self) -> u64 {
        self.cursor.emitted
    }

    /// Exact number of candidates still to come.
    #[inline]
    pub fn remaining(&self) -> u128 {
        self.space.saturating_sub(u128::from(self.cursor.emitted))
    }

    /// Snapshots the current position for [`CandidateSource::resume`].
    #[inline]
    pub fn cursor(&self) -> CandidateCursor {
        self.cursor.clone()
    }

    /// The fragmentation described by the current digits.
    fn current(&self) -> Fragmentation {
        let mut attributes = Vec::new();
        let mut ranges = Vec::new();
        let mut used = 0usize;
        for (d, choice) in self.cursor.choices.iter().enumerate() {
            if let Some(level) = *choice {
                attributes.push(LevelRef::new(d as u16, level));
                let counter = self.cursor.range_counters.get(used).copied().unwrap_or(0);
                ranges.push(self.sizes[d][usize::from(level)][counter]);
                used += 1;
            }
        }
        Fragmentation::from_parts(attributes, ranges)
    }

    /// Advances the range-counter odometer (last attribute fastest).
    /// Returns `false` when every combination for the current point
    /// candidate has been emitted.
    fn advance_ranges(&mut self) -> bool {
        // Walk the used dimensions in reverse (last counter spins
        // fastest), carrying on wrap — no per-candidate allocation in
        // this hot loop.
        let mut pos = self.cursor.range_counters.len();
        for (d, choice) in self.cursor.choices.iter().enumerate().rev() {
            let Some(level) = *choice else { continue };
            pos -= 1;
            self.cursor.range_counters[pos] += 1;
            if self.cursor.range_counters[pos] < self.sizes[d][usize::from(level)].len() {
                return true;
            }
            self.cursor.range_counters[pos] = 0;
        }
        debug_assert_eq!(pos, 0);
        false
    }

    /// Advances the point odometer to the next valid digit assignment
    /// (dimension 0 most significant, "unused" before the levels, at
    /// most `max_dimensionality` used digits). Returns `false` once the
    /// space is exhausted.
    fn advance_point(&mut self) -> bool {
        let dims = self.cursor.choices.len();
        let mut d = dims;
        while d > 0 {
            d -= 1;
            let used_before = self.cursor.choices[..d]
                .iter()
                .filter(|c| c.is_some())
                .count();
            let depth = self.sizes[d].len();
            match self.cursor.choices[d] {
                None => {
                    if used_before < self.max_dimensionality && depth > 0 {
                        self.cursor.choices[d] = Some(0);
                        for later in &mut self.cursor.choices[d + 1..] {
                            *later = None;
                        }
                        self.reset_range_counters();
                        return true;
                    }
                    // `None` is this digit's maximum under the cap: carry.
                }
                Some(level) => {
                    if usize::from(level) + 1 < depth {
                        self.cursor.choices[d] = Some(level + 1);
                        for later in &mut self.cursor.choices[d + 1..] {
                            *later = None;
                        }
                        self.reset_range_counters();
                        return true;
                    }
                    self.cursor.choices[d] = None;
                }
            }
        }
        false
    }

    fn reset_range_counters(&mut self) {
        let used = self.cursor.choices.iter().filter(|c| c.is_some()).count();
        self.cursor.range_counters.clear();
        self.cursor.range_counters.resize(used, 0);
    }
}

impl Iterator for CandidateSource {
    type Item = Fragmentation;

    fn next(&mut self) -> Option<Fragmentation> {
        if self.cursor.exhausted {
            return None;
        }
        if !self.cursor.started {
            // The all-`None` baseline is the first candidate.
            self.cursor.started = true;
            self.reset_range_counters();
        } else if !self.advance_ranges() && !self.advance_point() {
            self.cursor.exhausted = true;
            return None;
        }
        self.cursor.emitted += 1;
        Some(self.current())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.remaining();
        let lower = usize::try_from(remaining).unwrap_or(usize::MAX);
        (lower, usize::try_from(remaining).ok())
    }
}

/// The exact candidate count: a dynamic program over dimensions
/// tracking how many digit assignments use `k` dimensions. Each
/// dimension contributes "unused" (weight 1) or one of its levels,
/// each level weighted by its admissible range-size count.
fn predict_space(sizes: &[Vec<Vec<u64>>], max_dimensionality: usize) -> u128 {
    let cap = max_dimensionality.min(sizes.len());
    // ways[k] = number of assignments over the dimensions seen so far
    // that use exactly k of them.
    let mut ways = vec![0u128; cap + 1];
    ways[0] = 1;
    for dim in sizes {
        let weight: u128 = dim.iter().map(|level| level.len() as u128).sum();
        for k in (1..=cap).rev() {
            let grown = ways[k - 1].saturating_mul(weight);
            ways[k] = ways[k].saturating_add(grown);
        }
    }
    ways.iter().fold(0u128, |acc, &w| acc.saturating_add(w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};

    fn schema() -> StarSchema {
        apb1_like_schema(Apb1Config::default()).unwrap()
    }

    /// The historical recursive generators, kept verbatim as the order
    /// reference the lazy source must reproduce exactly.
    fn reference_point(schema: &StarSchema, max_dim: usize) -> Vec<Fragmentation> {
        fn recurse(
            schema: &StarSchema,
            dim: usize,
            max_dim: usize,
            current: &mut Vec<LevelRef>,
            out: &mut Vec<Fragmentation>,
        ) {
            if dim == schema.num_dimensions() {
                let ranges = vec![1; current.len()];
                out.push(Fragmentation::from_parts(current.clone(), ranges));
                return;
            }
            recurse(schema, dim + 1, max_dim, current, out);
            if current.len() < max_dim {
                let depth = schema.dimensions()[dim].depth();
                for level in 0..depth {
                    current.push(LevelRef::new(dim as u16, level as u16));
                    recurse(schema, dim + 1, max_dim, current, out);
                    current.pop();
                }
            }
        }
        let mut out = Vec::new();
        recurse(schema, 0, max_dim, &mut Vec::new(), &mut out);
        out
    }

    fn reference_ranged(
        schema: &StarSchema,
        max_dim: usize,
        range_options: &[u64],
    ) -> Vec<Fragmentation> {
        let mut out = Vec::new();
        for candidate in reference_point(schema, max_dim) {
            let per_attr: Vec<Vec<u64>> = candidate
                .attributes()
                .iter()
                .map(|&r| {
                    let dim = schema.dimension(r.dimension).expect("enumerated");
                    let fanout = dim.fanout(r.level).expect("enumerated");
                    let mut sizes = vec![1u64];
                    for &opt in range_options {
                        if opt > 1 && opt < fanout && fanout.is_multiple_of(opt) {
                            sizes.push(opt);
                        }
                    }
                    sizes
                })
                .collect();
            let mut counters = vec![0usize; per_attr.len()];
            loop {
                let ranges: Vec<u64> = counters
                    .iter()
                    .zip(&per_attr)
                    .map(|(&c, sizes)| sizes[c])
                    .collect();
                out.push(Fragmentation::from_parts(
                    candidate.attributes().to_vec(),
                    ranges,
                ));
                let mut pos = counters.len();
                let mut done = true;
                while pos > 0 {
                    pos -= 1;
                    counters[pos] += 1;
                    if counters[pos] < per_attr[pos].len() {
                        done = false;
                        break;
                    }
                    counters[pos] = 0;
                }
                if done {
                    break;
                }
            }
        }
        out
    }

    #[test]
    fn point_source_matches_reference_order_exactly() {
        let s = schema();
        for max_dim in [0, 1, 2, 4, 9] {
            let lazy: Vec<_> = CandidateSource::point(&s, max_dim).collect();
            let reference = reference_point(&s, max_dim);
            assert_eq!(lazy, reference, "max_dim={max_dim}");
        }
    }

    #[test]
    fn ranged_source_matches_reference_order_exactly() {
        let s = schema();
        for options in [&[2u64, 3, 5][..], &[12, 2], &[], &[7]] {
            for max_dim in [1, 2, 4] {
                let lazy: Vec<_> = CandidateSource::ranged(&s, max_dim, options).collect();
                let reference = reference_ranged(&s, max_dim, options);
                assert_eq!(lazy, reference, "max_dim={max_dim} options={options:?}");
            }
        }
    }

    #[test]
    fn space_size_is_exact() {
        let s = schema();
        for max_dim in [0, 1, 2, 3, 4, 9] {
            for options in [&[][..], &[2, 3, 5], &[2]] {
                let source = CandidateSource::ranged(&s, max_dim, options);
                let predicted = source.space_size();
                let actual = source.count() as u128;
                assert_eq!(predicted, actual, "max_dim={max_dim} options={options:?}");
            }
        }
    }

    #[test]
    fn position_and_remaining_track_iteration() {
        let s = schema();
        let mut source = CandidateSource::point(&s, 2);
        let space = source.space_size();
        assert_eq!(source.position(), 0);
        assert_eq!(source.remaining(), space);
        let mut n = 0u64;
        while source.next().is_some() {
            n += 1;
            assert_eq!(source.position(), n);
            assert_eq!(source.remaining(), space - u128::from(n));
        }
        assert_eq!(u128::from(n), space);
        // Exhausted sources stay exhausted.
        assert!(source.next().is_none());
        assert_eq!(source.remaining(), 0);
    }

    #[test]
    fn cursor_resume_reproduces_the_tail() {
        let s = schema();
        let options = [2u64, 3];
        let full: Vec<_> = CandidateSource::ranged(&s, 3, &options).collect();
        for split in [0usize, 1, 7, 100, full.len() - 1, full.len()] {
            let mut head = CandidateSource::ranged(&s, 3, &options);
            let mut prefix = Vec::new();
            for _ in 0..split {
                prefix.push(head.next().unwrap());
            }
            let cursor = head.cursor();
            assert_eq!(cursor.position(), split as u64);
            let tail: Vec<_> = CandidateSource::resume(&s, 3, &options, cursor)
                .unwrap()
                .collect();
            let mut rebuilt = prefix;
            rebuilt.extend(tail);
            assert_eq!(rebuilt, full, "split at {split}");
        }
    }

    #[test]
    fn resume_rejects_foreign_cursors() {
        let s = schema();
        let mut source = CandidateSource::point(&s, 2);
        let _ = source.next();
        let mut cursor = source.cursor();
        cursor.choices.push(None);
        assert!(CandidateSource::resume(&s, 2, &[], cursor).is_err());
        let mut cursor = source.cursor();
        cursor.choices[0] = Some(99);
        assert!(CandidateSource::resume(&s, 2, &[], cursor).is_err());
    }

    #[test]
    fn size_hint_is_exact() {
        let s = schema();
        let mut source = CandidateSource::point(&s, 4);
        let space = source.space_size() as usize;
        assert_eq!(source.size_hint(), (space, Some(space)));
        let _ = source.next();
        assert_eq!(source.size_hint(), (space - 1, Some(space - 1)));
    }

    #[test]
    fn every_candidate_validates_and_is_unique() {
        let s = schema();
        let all: Vec<_> = CandidateSource::ranged(&s, 4, &[2, 3, 5]).collect();
        let mut seen = std::collections::HashSet::new();
        for c in &all {
            c.validate(&s).unwrap();
            assert!(seen.insert(c.clone()), "duplicate {c}");
        }
        assert_eq!(all.iter().filter(|c| c.is_none()).count(), 1);
    }
}

#[cfg(test)]
mod review_probe {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    #[test]
    fn resume_with_different_range_options_panics() {
        let s = apb1_like_schema(Apb1Config::default()).unwrap();
        let mut src = CandidateSource::ranged(&s, 3, &[2, 3]);
        // Advance until some range counter is nonzero.
        let mut cursor = None;
        for _ in 0..500 {
            src.next();
            let c = src.cursor();
            if c.range_counters.iter().any(|&x| x > 0) {
                cursor = Some(c);
                break;
            }
        }
        let cursor = cursor.expect("found nonzero counter");
        // Resume under point-only options: validation passes, then iteration panics.
        let mut resumed = CandidateSource::resume(&s, 3, &[], cursor).unwrap();
        let _ = resumed.next();
    }
}
