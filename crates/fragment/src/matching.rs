//! Query → fragment matching.
//!
//! The central property of MDHF: a star query's work can be confined to a
//! subset of the fragments whenever it references at least one
//! fragmentation dimension. This module quantifies that — for a query class
//! and a fragmentation it derives how many fragmentation-attribute values
//! the query matches per dimension, the expected number of accessed
//! fragments, and the *residual selectivity*: the fraction of rows inside
//! the matched fragments that still satisfy the query's predicates.

use warlock_schema::{DimensionId, LevelId, StarSchema};
use warlock_workload::QueryClass;

use crate::Fragmentation;

/// Match result for one fragmentation dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimensionMatch {
    /// The fragmentation dimension.
    pub dimension: DimensionId,
    /// The fragmentation level on that dimension.
    pub frag_level: LevelId,
    /// Effective coordinate cardinality of the fragmentation attribute
    /// (level cardinality divided by the attribute's range size).
    pub frag_cardinality: u64,
    /// Expected number of fragmentation-attribute values the query matches
    /// on this dimension (equals the cardinality when unreferenced).
    pub matched_values: f64,
    /// Whether the query references this dimension at all.
    pub referenced: bool,
}

/// Full match of one query class against one fragmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMatch {
    per_dimension: Vec<DimensionMatch>,
    expected_fragments: f64,
    residual_selectivity: f64,
    total_selectivity: f64,
    confined: bool,
}

impl QueryMatch {
    /// Evaluates the match of `query` against `fragmentation` on `schema`.
    ///
    /// Matching model (uniform nesting, uniformly drawn predicate values):
    ///
    /// * query level **coarser or equal** to the fragmentation level: each
    ///   selected value expands to `card(l_f)/card(l_q)` whole fragment
    ///   values — whole fragments are covered, no residual filtering;
    /// * query level **finer**: each selected value maps to its single
    ///   ancestor fragment value; `n` uniformly drawn distinct values hit
    ///   `F·(1 − P_untouched)` expected distinct ancestors (classic
    ///   occupancy), and matched fragments are only partially relevant;
    /// * dimension **unreferenced**: every fragment value matches.
    ///
    /// Dimensions the query references that are *not* fragmentation
    /// attributes contribute only residual (in-fragment) selectivity.
    pub fn evaluate(
        schema: &StarSchema,
        fragmentation: &Fragmentation,
        query: &QueryClass,
    ) -> Self {
        let mut per_dimension = Vec::with_capacity(fragmentation.dimensionality());
        let mut expected_fragments = 1.0f64;
        let mut residual = 1.0f64;
        let mut confined = false;

        for (i, &attr) in fragmentation.attributes().iter().enumerate() {
            let dim = schema.dimension(attr.dimension).expect("validated");
            // Effective coordinate cardinality: level cardinality divided
            // by the attribute's range size (1 for point fragmentations).
            let frag_card = fragmentation.effective_cardinality(schema, i);
            let m = match query.predicate(attr.dimension) {
                None => DimensionMatch {
                    dimension: attr.dimension,
                    frag_level: attr.level,
                    frag_cardinality: frag_card,
                    matched_values: frag_card as f64,
                    referenced: false,
                },
                Some(pred) => {
                    confined = true;
                    let query_card = dim.cardinality(pred.level).expect("validated query");
                    let n = pred.values;
                    // Coarser-or-equal granularity iff the query level has
                    // at most as many members as there are fragment
                    // coordinates (divisibility holds because ranges divide
                    // fan-outs): whole fragments are covered. Otherwise the
                    // query is finer-grained and occupancy statistics apply.
                    let matched = if query_card <= frag_card {
                        // Each coarse value covers frag_card/query_card
                        // fragment coordinates exactly.
                        n as f64 * (frag_card as f64 / query_card as f64)
                        // residual contribution 1: whole fragments covered.
                    } else {
                        let matched = expected_distinct_groups(query_card, frag_card, n);
                        // Partial fragments: rows inside matched fragments
                        // are filtered further.
                        let covered_fraction = matched / frag_card as f64;
                        residual *= (n as f64 / query_card as f64) / covered_fraction;
                        matched
                    };
                    DimensionMatch {
                        dimension: attr.dimension,
                        frag_level: attr.level,
                        frag_cardinality: frag_card,
                        matched_values: matched,
                        referenced: true,
                    }
                }
            };
            expected_fragments *= m.matched_values;
            per_dimension.push(m);
        }

        // Referenced dimensions that are not fragmentation attributes
        // filter rows inside every accessed fragment.
        for (&dim_id, pred) in query.predicates() {
            if fragmentation.level_on(dim_id).is_none() {
                let dim = schema.dimension(dim_id).expect("validated query");
                let card = dim.cardinality(pred.level).expect("validated query");
                residual *= pred.values as f64 / card as f64;
            }
        }

        Self {
            per_dimension,
            expected_fragments,
            residual_selectivity: residual.min(1.0),
            total_selectivity: query.selectivity(schema),
            confined,
        }
    }

    /// Per-fragmentation-dimension match details, in attribute order.
    #[inline]
    pub fn per_dimension(&self) -> &[DimensionMatch] {
        &self.per_dimension
    }

    /// Expected number of fragments the query accesses.
    #[inline]
    pub fn expected_fragments(&self) -> f64 {
        self.expected_fragments
    }

    /// Fraction of rows *inside the accessed fragments* that satisfy the
    /// query (1.0 = accessed fragments are read in full).
    #[inline]
    pub fn residual_selectivity(&self) -> f64 {
        self.residual_selectivity
    }

    /// Overall fraction of fact rows the query selects.
    #[inline]
    pub fn total_selectivity(&self) -> f64 {
        self.total_selectivity
    }

    /// Whether the query references at least one fragmentation dimension
    /// (the MDHF confinement property).
    #[inline]
    pub fn confined(&self) -> bool {
        self.confined
    }

    /// Expected rows the query selects in total, given the fact row count.
    #[inline]
    pub fn expected_rows(&self, fact_rows: u64) -> f64 {
        self.total_selectivity * fact_rows as f64
    }

    /// Expected rows read per accessed fragment, given uniform fragment
    /// sizes.
    pub fn rows_per_accessed_fragment(&self, fact_rows: u64, num_fragments: u64) -> f64 {
        let fragment_rows = fact_rows as f64 / num_fragments as f64;
        fragment_rows * self.residual_selectivity
    }
}

/// Expected number of distinct groups hit when drawing `n` distinct values
/// uniformly from `q` values that partition into `f` equal groups.
///
/// `P(one group untouched) = C(q−g, n) / C(q, n)` with `g = q/f`, evaluated
/// as a stable product; the expectation is `f · (1 − P)`.
pub fn expected_distinct_groups(q: u64, f: u64, n: u64) -> f64 {
    debug_assert!(f >= 1 && q >= f && q.is_multiple_of(f), "q={q} f={f}");
    let g = q / f;
    if n == 0 {
        return 0.0;
    }
    if n >= q {
        return f as f64;
    }
    // If removing one group leaves fewer than n values, every group is hit.
    if q - g < n {
        return f as f64;
    }
    // P(untouched) = Π_{i=0..g-1} (q - n - i) / (q - i)
    let mut p = 1.0f64;
    for i in 0..g {
        p *= (q - n - i) as f64 / (q - i) as f64;
        if p == 0.0 {
            break;
        }
    }
    f as f64 * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_workload::{DimensionPredicate, QueryClass};

    fn schema() -> StarSchema {
        apb1_like_schema(Apb1Config::default()).unwrap()
    }

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} !~ {b}");
    }

    #[test]
    fn distinct_groups_edge_cases() {
        // n = 0 touches nothing; n = q touches all groups.
        assert_eq!(expected_distinct_groups(24, 8, 0), 0.0);
        assert_eq!(expected_distinct_groups(24, 8, 24), 8.0);
        // One group: always 1 once n > 0.
        assert_close(expected_distinct_groups(24, 1, 1), 1.0, 1e-12);
        // Groups of size 1 (f = q): exactly n groups.
        assert_close(expected_distinct_groups(24, 24, 5), 5.0, 1e-12);
    }

    #[test]
    fn distinct_groups_monotone_in_n() {
        let mut prev = 0.0;
        for n in 0..=24 {
            let e = expected_distinct_groups(24, 8, n);
            assert!(e >= prev - 1e-12);
            assert!(e <= 8.0 + 1e-12);
            prev = e;
        }
    }

    #[test]
    fn distinct_groups_exact_small_case() {
        // q=4, f=2 (groups {0,1},{2,3}), n=2: P(same group) = 2/6, so
        // E = 2·(1/3·1/2 ... ) — direct: distinct = 1 w.p. 1/3, 2 w.p. 2/3
        // → E = 5/3.
        assert_close(expected_distinct_groups(4, 2, 2), 5.0 / 3.0, 1e-12);
    }

    #[test]
    fn coarser_query_covers_whole_fragments() {
        let s = schema();
        // Fragment by time.month (24); query on time.quarter, 1 value.
        let f = Fragmentation::from_pairs(&[(2, 2)]).unwrap();
        let q = QueryClass::new("q").with(2, DimensionPredicate::point(1));
        let m = QueryMatch::evaluate(&s, &f, &q);
        // One quarter = 3 months.
        assert_close(m.expected_fragments(), 3.0, 1e-12);
        assert_close(m.residual_selectivity(), 1.0, 1e-12);
        assert!(m.confined());
    }

    #[test]
    fn equal_level_matches_exactly() {
        let s = schema();
        let f = Fragmentation::from_pairs(&[(2, 2)]).unwrap();
        let q = QueryClass::new("q").with(2, DimensionPredicate::range(2, 4));
        let m = QueryMatch::evaluate(&s, &f, &q);
        assert_close(m.expected_fragments(), 4.0, 1e-12);
        assert_close(m.residual_selectivity(), 1.0, 1e-12);
    }

    #[test]
    fn finer_query_hits_partial_fragments() {
        let s = schema();
        // Fragment by time.quarter (8); query one month.
        let f = Fragmentation::from_pairs(&[(2, 1)]).unwrap();
        let q = QueryClass::new("q").with(2, DimensionPredicate::point(2));
        let m = QueryMatch::evaluate(&s, &f, &q);
        assert_close(m.expected_fragments(), 1.0, 1e-12);
        // Fragment holds 3 months; 1 selected → residual 1/3.
        assert_close(m.residual_selectivity(), 1.0 / 3.0, 1e-12);
    }

    #[test]
    fn unreferenced_fragmentation_dimension_multiplies_fragments() {
        let s = schema();
        // Fragment by channel (9) only; query references time only.
        let f = Fragmentation::from_pairs(&[(3, 0)]).unwrap();
        let q = QueryClass::new("q").with(2, DimensionPredicate::point(2));
        let m = QueryMatch::evaluate(&s, &f, &q);
        assert_close(m.expected_fragments(), 9.0, 1e-12);
        assert!(!m.confined());
        // Time predicate becomes residual: 1/24.
        assert_close(m.residual_selectivity(), 1.0 / 24.0, 1e-12);
    }

    #[test]
    fn multi_dimensional_match_multiplies() {
        let s = schema();
        // product.class (900) × time.month (24); query: one class, one quarter.
        let f = Fragmentation::from_pairs(&[(0, 4), (2, 2)]).unwrap();
        let q = QueryClass::new("q")
            .with(0, DimensionPredicate::point(4))
            .with(2, DimensionPredicate::point(1));
        let m = QueryMatch::evaluate(&s, &f, &q);
        // 1 class × 3 months of the quarter.
        assert_close(m.expected_fragments(), 3.0, 1e-12);
        assert_close(m.residual_selectivity(), 1.0, 1e-12);
        assert_eq!(m.per_dimension().len(), 2);
        assert!(m.per_dimension()[0].referenced);
    }

    #[test]
    fn baseline_fragmentation_reads_the_single_fragment() {
        let s = schema();
        let f = Fragmentation::none();
        let q = QueryClass::new("q").with(0, DimensionPredicate::point(5));
        let m = QueryMatch::evaluate(&s, &f, &q);
        assert_close(m.expected_fragments(), 1.0, 1e-12);
        assert!(!m.confined());
        // All filtering is residual.
        assert_close(m.residual_selectivity(), 1.0 / 9000.0, 1e-15);
    }

    #[test]
    fn selectivity_consistency_identity() {
        // total selectivity == (expected_fragments / num_fragments) ×
        // residual, for every combination where matching is exact (coarser
        // or equal references).
        let s = schema();
        let f = Fragmentation::from_pairs(&[(0, 4), (2, 2)]).unwrap();
        let q = QueryClass::new("q")
            .with(0, DimensionPredicate::point(3)) // group, coarser than class
            .with(2, DimensionPredicate::point(2)) // month, equal
            .with(3, DimensionPredicate::point(0)); // channel, residual
        let m = QueryMatch::evaluate(&s, &f, &q);
        let num_fragments = (900 * 24) as f64;
        let lhs = m.total_selectivity();
        let rhs = m.expected_fragments() / num_fragments * m.residual_selectivity();
        assert_close(lhs, rhs, 1e-15);
    }

    #[test]
    fn ranged_fragmentation_equals_equivalent_parent_level() {
        // product.code[r=10] groups 10 codes per coordinate — under
        // uniform nesting that is *exactly* fragmenting by product.class.
        // Every query class must match identically.
        let s = schema();
        let ranged = Fragmentation::from_ranged_pairs(&[(0, 5, 10), (2, 2, 1)]).unwrap();
        let parent = Fragmentation::from_pairs(&[(0, 4), (2, 2)]).unwrap();
        for q in [
            QueryClass::new("coarse").with(0, DimensionPredicate::point(1)),
            QueryClass::new("equal").with(0, DimensionPredicate::range(4, 3)),
            QueryClass::new("finer").with(0, DimensionPredicate::range(5, 7)),
            QueryClass::new("other")
                .with(2, DimensionPredicate::point(1))
                .with(3, DimensionPredicate::point(0)),
        ] {
            let a = QueryMatch::evaluate(&s, &ranged, &q);
            let b = QueryMatch::evaluate(&s, &parent, &q);
            assert_close(a.expected_fragments(), b.expected_fragments(), 1e-9);
            assert_close(a.residual_selectivity(), b.residual_selectivity(), 1e-12);
        }
    }

    #[test]
    fn ranged_intermediate_granularity() {
        // month[r=3] creates quarter-equivalent coordinates: a month query
        // hits one coordinate with residual 1/3.
        let s = schema();
        let f = Fragmentation::from_ranged_pairs(&[(2, 2, 3)]).unwrap();
        let q = QueryClass::new("q").with(2, DimensionPredicate::point(2));
        let m = QueryMatch::evaluate(&s, &f, &q);
        assert_close(m.expected_fragments(), 1.0, 1e-12);
        assert_close(m.residual_selectivity(), 1.0 / 3.0, 1e-12);
        // A quarter query covers exactly one whole coordinate.
        let q = QueryClass::new("q").with(2, DimensionPredicate::point(1));
        let m = QueryMatch::evaluate(&s, &f, &q);
        assert_close(m.expected_fragments(), 1.0, 1e-12);
        assert_close(m.residual_selectivity(), 1.0, 1e-12);
    }

    #[test]
    fn rows_helpers() {
        let s = schema();
        let f = Fragmentation::from_pairs(&[(2, 2)]).unwrap();
        let q = QueryClass::new("q").with(2, DimensionPredicate::point(2));
        let m = QueryMatch::evaluate(&s, &f, &q);
        let rows = s.fact_rows(0);
        assert_close(m.expected_rows(rows), rows as f64 / 24.0, 1e-6);
        assert_close(
            m.rows_per_accessed_fragment(rows, 24),
            rows as f64 / 24.0,
            1e-6,
        );
    }
}
