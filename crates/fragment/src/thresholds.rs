//! Candidate exclusion thresholds.
//!
//! "Additional thresholds are applied to exclude fragmentations that, for
//! instance, cause fragment sizes to drop below the prefetching granule
//! etc." (paper, §3.2). The thresholds keep the costed candidate set small
//! and sane: over-declustered candidates with sub-granule fragments cannot
//! amortize positioning, and candidates with fewer fragments than disks
//! cannot use the full disk complement.

use std::fmt;

use crate::FragmentLayout;

/// Environment numbers a threshold check needs; passed as plain values so
/// this crate stays decoupled from the storage crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdContext {
    /// Fact rows that fit one page.
    pub rows_per_page: u64,
    /// Prefetch granule in pages (the *largest* granule the policy allows,
    /// for the sub-granule exclusion).
    pub prefetch_pages: u32,
    /// Number of disks in the system.
    pub num_disks: u32,
}

/// Why a candidate was excluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exclusion {
    /// The fragment count does not even fit `u64` — the candidate can
    /// never be laid out, whatever the configured limits. Raised by the
    /// pipeline's structural pre-exclusion so the exact `u128` count is
    /// reported instead of a silently wrapped value.
    FragmentCountOverflow {
        /// The candidate's exact fragment count.
        fragments: u128,
    },
    /// More fragments than `max_fragments`.
    TooManyFragments {
        /// The candidate's fragment count.
        fragments: u64,
        /// The configured limit.
        limit: u64,
    },
    /// Average fragment smaller than the prefetch granule.
    FragmentBelowPrefetch {
        /// Average fragment size in pages.
        fragment_pages: u64,
        /// Prefetch granule in pages.
        prefetch_pages: u32,
    },
    /// Average fragment holds fewer rows than `min_fragment_rows`.
    TooFewRowsPerFragment {
        /// Average rows per fragment.
        rows: u64,
        /// The configured minimum.
        min_rows: u64,
    },
    /// Fewer fragments than disks — full declustering impossible.
    FewerFragmentsThanDisks {
        /// The candidate's fragment count.
        fragments: u64,
        /// Number of disks.
        disks: u32,
    },
}

impl Exclusion {
    /// A short machine-readable tag for the exclusion reason, stable
    /// across releases — the grouping key of the report's per-reason
    /// exclusion summary and the `warlockd` wire protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::FragmentCountOverflow { .. } => "fragment_count_overflow",
            Self::TooManyFragments { .. } => "too_many_fragments",
            Self::FragmentBelowPrefetch { .. } => "fragment_below_prefetch",
            Self::TooFewRowsPerFragment { .. } => "too_few_rows_per_fragment",
            Self::FewerFragmentsThanDisks { .. } => "fewer_fragments_than_disks",
        }
    }
}

impl fmt::Display for Exclusion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::FragmentCountOverflow { fragments } => {
                write!(f, "{fragments} fragments overflow the evaluable range")
            }
            Self::TooManyFragments { fragments, limit } => {
                write!(f, "{fragments} fragments exceed limit {limit}")
            }
            Self::FragmentBelowPrefetch {
                fragment_pages,
                prefetch_pages,
            } => write!(
                f,
                "fragment size {fragment_pages} pages below prefetch granule {prefetch_pages}"
            ),
            Self::TooFewRowsPerFragment { rows, min_rows } => {
                write!(f, "{rows} rows per fragment below minimum {min_rows}")
            }
            Self::FewerFragmentsThanDisks { fragments, disks } => {
                write!(f, "{fragments} fragments cannot cover {disks} disks")
            }
        }
    }
}

/// Threshold configuration of the prediction layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    /// Hard cap on the fragment count (metadata and allocation overhead).
    pub max_fragments: u64,
    /// Minimum average rows per fragment.
    pub min_fragment_rows: u64,
    /// Exclude candidates whose average fragment is smaller than the
    /// prefetch granule.
    pub exclude_below_prefetch: bool,
    /// Exclude candidates with fewer fragments than disks (except the
    /// unfragmented baseline, which is always kept for comparison).
    pub require_full_declustering: bool,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            max_fragments: 1 << 20,
            min_fragment_rows: 1,
            exclude_below_prefetch: true,
            require_full_declustering: true,
        }
    }
}

impl Thresholds {
    /// Checks one candidate layout; `Ok(())` means the candidate survives.
    pub fn check(&self, layout: &FragmentLayout, ctx: ThresholdContext) -> Result<(), Exclusion> {
        let fragments = layout.num_fragments();
        if fragments > self.max_fragments {
            return Err(Exclusion::TooManyFragments {
                fragments,
                limit: self.max_fragments,
            });
        }
        let rows = (layout.fact_rows() / fragments.max(1)).max(
            // Guard against sub-row averages rounding to zero.
            u64::from(layout.fact_rows() >= fragments),
        );
        if rows < self.min_fragment_rows {
            return Err(Exclusion::TooFewRowsPerFragment {
                rows,
                min_rows: self.min_fragment_rows,
            });
        }
        let fragment_pages = rows.div_ceil(ctx.rows_per_page.max(1));
        if self.exclude_below_prefetch
            && !layout.fragmentation().is_none()
            && fragment_pages < u64::from(ctx.prefetch_pages)
        {
            return Err(Exclusion::FragmentBelowPrefetch {
                fragment_pages,
                prefetch_pages: ctx.prefetch_pages,
            });
        }
        if self.require_full_declustering
            && !layout.fragmentation().is_none()
            && fragments < u64::from(ctx.num_disks)
        {
            return Err(Exclusion::FewerFragmentsThanDisks {
                fragments,
                disks: ctx.num_disks,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fragmentation;
    use warlock_schema::{apb1_like_schema, Apb1Config};

    fn layout(pairs: &[(u16, u16)]) -> FragmentLayout {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let frag = if pairs.is_empty() {
            Fragmentation::none()
        } else {
            Fragmentation::from_pairs(pairs).unwrap()
        };
        FragmentLayout::new(&schema, frag, 0)
    }

    fn ctx() -> ThresholdContext {
        ThresholdContext {
            rows_per_page: 146, // 8192 / 56-byte rows
            prefetch_pages: 8,
            num_disks: 16,
        }
    }

    #[test]
    fn moderate_candidate_passes() {
        let t = Thresholds::default();
        // time.month: 24 fragments of ~728k rows → plenty of pages each.
        assert!(t.check(&layout(&[(2, 2)]), ctx()).is_ok());
    }

    #[test]
    fn too_many_fragments_excluded() {
        let t = Thresholds {
            max_fragments: 1000,
            ..Default::default()
        };
        // product.code × store = 9000 × 900 = 8.1 M fragments.
        let err = t.check(&layout(&[(0, 5), (1, 1)]), ctx()).unwrap_err();
        assert!(matches!(err, Exclusion::TooManyFragments { .. }));
    }

    #[test]
    fn sub_prefetch_fragments_excluded() {
        let t = Thresholds::default();
        // product.class × time.month = 21 600 fragments of ~810 rows each
        // → 6 pages, below the 8-page granule.
        let err = t.check(&layout(&[(0, 4), (2, 2)]), ctx()).unwrap_err();
        assert!(matches!(err, Exclusion::FragmentBelowPrefetch { .. }));
    }

    #[test]
    fn sub_prefetch_check_can_be_disabled() {
        let t = Thresholds {
            exclude_below_prefetch: false,
            ..Default::default()
        };
        assert!(t.check(&layout(&[(0, 4), (2, 2)]), ctx()).is_ok());
    }

    #[test]
    fn fewer_fragments_than_disks_excluded() {
        let t = Thresholds::default();
        // product.division: 5 fragments < 16 disks.
        let err = t.check(&layout(&[(0, 0)]), ctx()).unwrap_err();
        assert!(matches!(err, Exclusion::FewerFragmentsThanDisks { .. }));

        let relaxed = Thresholds {
            require_full_declustering: false,
            ..Default::default()
        };
        assert!(relaxed.check(&layout(&[(0, 0)]), ctx()).is_ok());
    }

    #[test]
    fn baseline_is_always_kept() {
        let t = Thresholds::default();
        assert!(t.check(&layout(&[]), ctx()).is_ok());
    }

    #[test]
    fn min_rows_threshold() {
        let t = Thresholds {
            min_fragment_rows: 1_000_000,
            exclude_below_prefetch: false,
            require_full_declustering: false,
            ..Default::default()
        };
        // month: ~728k rows per fragment < 1M.
        let err = t.check(&layout(&[(2, 2)]), ctx()).unwrap_err();
        assert!(matches!(err, Exclusion::TooFewRowsPerFragment { .. }));
        // quarter: ~2.18M rows per fragment ≥ 1M.
        assert!(t.check(&layout(&[(2, 1)]), ctx()).is_ok());
    }

    #[test]
    fn exclusion_display() {
        let e = Exclusion::FragmentBelowPrefetch {
            fragment_pages: 3,
            prefetch_pages: 8,
        };
        assert!(e.to_string().contains("below prefetch"));
    }
}
