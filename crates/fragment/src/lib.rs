//! Multi-dimensional hierarchical fragmentation (MDHF) for WARLOCK.
//!
//! "A fragmentation is defined by selecting a set of fragmentation
//! attributes from the dimensional attributes, at most one per dimension.
//! All fact table rows corresponding to a single value combination of the
//! fragmentation attributes are assigned to one fragment." (paper, §2)
//!
//! This crate implements:
//!
//! * [`Fragmentation`] — one MDHF candidate (a set of fragmentation
//!   attributes) plus enumeration of all "point" candidates
//!   ([`enumerate_candidates`]),
//! * [`FragmentLayout`] — derived per-candidate structure: fragment counts,
//!   the logical fragment order (mixed-radix coordinates), uniform and
//!   skewed fragment sizes,
//! * [`QueryMatch`] — the query→fragment matching model: how many fragments
//!   a query class touches and the residual selectivity inside them,
//! * [`Thresholds`] — the exclusion rules the prediction layer applies
//!   before costing candidates.

//!
//! # Example
//!
//! ```
//! use warlock_fragment::{Fragmentation, FragmentLayout, QueryMatch};
//! use warlock_schema::{apb1_like_schema, Apb1Config};
//! use warlock_workload::{DimensionPredicate, QueryClass};
//!
//! let schema = apb1_like_schema(Apb1Config::default()).unwrap();
//! // Fragment the fact table by time.month (dimension 2, level 2).
//! let frag = Fragmentation::from_pairs(&[(2, 2)]).unwrap();
//! let layout = FragmentLayout::new(&schema, frag, 0);
//! assert_eq!(layout.num_fragments(), 24);
//!
//! // A one-quarter query touches exactly 3 monthly fragments, in full.
//! let q = QueryClass::new("q").with(2, DimensionPredicate::point(1));
//! let m = QueryMatch::evaluate(&schema, layout.fragmentation(), &q);
//! assert_eq!(m.expected_fragments(), 3.0);
//! assert_eq!(m.residual_selectivity(), 1.0);
//! ```

#![warn(missing_docs)]

mod candidate;
mod layout;
mod matching;
mod source;
mod thresholds;

pub use candidate::{
    enumerate_candidates, enumerate_candidates_ranged, CandidateError, Fragmentation,
};
pub use layout::{apportion, FragmentLayout, LayoutScratch, SkewModelExt};
pub use matching::{expected_distinct_groups, DimensionMatch, QueryMatch};
pub use source::{CandidateCursor, CandidateSource};
pub use thresholds::{Exclusion, ThresholdContext, Thresholds};
