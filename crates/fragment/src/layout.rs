//! Derived fragment structure of one candidate: counts, logical order and
//! sizes.

use crate::Fragmentation;
use warlock_schema::StarSchema;
use warlock_skew::SkewModel;

/// Reusable construction buffers for [`FragmentLayout`].
///
/// Chunked evaluation builds and discards one layout per candidate; with
/// a scratch arena the radix and stride vectors are recycled instead of
/// re-allocated — [`FragmentLayout::new_in`] moves the buffers out of the
/// scratch and [`FragmentLayout::recycle`] hands them back (capacity
/// kept), so a worker that owns one `LayoutScratch` for its lifetime
/// builds layouts with zero steady-state heap traffic.
#[derive(Debug, Default)]
pub struct LayoutScratch {
    radices: Vec<u64>,
    strides: Vec<u64>,
}

impl LayoutScratch {
    /// An empty scratch; buffers grow on first use and are kept after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the buffered state, keeping capacity. Called on entry by
    /// [`FragmentLayout::new_in`], so stale values from a previous
    /// candidate can never leak into the next layout.
    pub fn reset(&mut self) {
        self.radices.clear();
        self.strides.clear();
    }
}

/// The materialized structure of one fragmentation applied to one fact
/// table: the mixed-radix fragment coordinate space, the logical fragment
/// order used by the round-robin allocator, and fragment sizes under
/// uniform or skewed member distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentLayout {
    fragmentation: Fragmentation,
    /// Cardinality of each fragmentation attribute (sorted by dimension).
    radices: Vec<u64>,
    /// Mixed-radix strides: `strides[i] = Π radices[i+1..]`.
    strides: Vec<u64>,
    num_fragments: u64,
    fact_rows: u64,
}

impl FragmentLayout {
    /// Computes the layout of `fragmentation` on fact table `fact_index`.
    ///
    /// # Panics
    ///
    /// Panics if the candidate does not validate against the schema or the
    /// fragment count overflows `u64` (the thresholds layer excludes such
    /// candidates long before a layout is materialized).
    pub fn new(schema: &StarSchema, fragmentation: Fragmentation, fact_index: usize) -> Self {
        let mut scratch = LayoutScratch::new();
        Self::new_in(&mut scratch, schema, fragmentation, fact_index)
    }

    /// Like [`new`](Self::new), but builds the radix/stride vectors into
    /// buffers recycled from `scratch` instead of fresh allocations. Pair
    /// with [`recycle`](Self::recycle) to return the buffers once the
    /// layout is consumed.
    ///
    /// # Panics
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn new_in(
        scratch: &mut LayoutScratch,
        schema: &StarSchema,
        fragmentation: Fragmentation,
        fact_index: usize,
    ) -> Self {
        fragmentation
            .validate(schema)
            .expect("fragmentation must validate against the schema");
        scratch.reset();
        let mut radices = std::mem::take(&mut scratch.radices);
        radices.extend(
            (0..fragmentation.dimensionality())
                .map(|i| fragmentation.effective_cardinality(schema, i)),
        );
        let total: u128 = radices.iter().map(|&r| r as u128).product();
        assert!(
            total <= u64::MAX as u128,
            "fragment count {total} overflows u64"
        );
        let mut strides = std::mem::take(&mut scratch.strides);
        strides.resize(radices.len(), 1u64);
        for i in (0..radices.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * radices[i + 1];
        }
        Self {
            fragmentation,
            radices,
            strides,
            num_fragments: total as u64,
            fact_rows: schema.fact_rows(fact_index),
        }
    }

    /// Consumes the layout, returning its buffers to `scratch` (capacity
    /// preserved for the next [`new_in`](Self::new_in)) and handing the
    /// owned [`Fragmentation`] back to the caller — batch evaluation moves
    /// it straight into the output instead of cloning.
    pub fn recycle(self, scratch: &mut LayoutScratch) -> Fragmentation {
        scratch.radices = self.radices;
        scratch.strides = self.strides;
        scratch.reset();
        self.fragmentation
    }

    /// The candidate this layout belongs to.
    #[inline]
    pub fn fragmentation(&self) -> &Fragmentation {
        &self.fragmentation
    }

    /// Total number of fragments (1 for the unfragmented baseline).
    #[inline]
    pub fn num_fragments(&self) -> u64 {
        self.num_fragments
    }

    /// Fact rows covered by the layout.
    #[inline]
    pub fn fact_rows(&self) -> u64 {
        self.fact_rows
    }

    /// Per-attribute cardinalities, in attribute (dimension) order.
    #[inline]
    pub fn radices(&self) -> &[u64] {
        &self.radices
    }

    /// Logical fragment index of a coordinate vector (one value ordinal per
    /// fragmentation attribute, in attribute order).
    pub fn index_of(&self, coords: &[u64]) -> u64 {
        assert_eq!(coords.len(), self.radices.len(), "coordinate arity");
        coords
            .iter()
            .zip(&self.radices)
            .zip(&self.strides)
            .map(|((&c, &r), &s)| {
                assert!(c < r, "coordinate {c} out of radix {r}");
                c * s
            })
            .sum()
    }

    /// Coordinate vector of a logical fragment index.
    pub fn coords_of(&self, mut index: u64) -> Vec<u64> {
        assert!(index < self.num_fragments, "fragment index out of range");
        let mut coords = Vec::with_capacity(self.radices.len());
        for &s in &self.strides {
            coords.push(index / s);
            index %= s;
        }
        coords
    }

    /// Average fragment rows under the uniform distribution.
    #[inline]
    pub fn uniform_rows_per_fragment(&self) -> f64 {
        self.fact_rows as f64 / self.num_fragments as f64
    }

    /// Normalized fragment weights under `skew`: the product of the
    /// per-dimension member weights aggregated to each fragmentation level.
    ///
    /// Materializes one `f64` per fragment; callers must gate on
    /// [`num_fragments`](Self::num_fragments) (the thresholds layer caps it).
    pub fn fragment_weights(&self, schema: &StarSchema, skew: &SkewModel) -> Vec<f64> {
        let n = self.num_fragments as usize;
        if self.radices.is_empty() {
            return vec![1.0];
        }
        // Per-attribute aggregated weights at the *effective* granularity
        // (ranged attributes aggregate `range` consecutive members).
        let per_dim: Vec<Vec<f64>> = self
            .fragmentation
            .attributes()
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let effective = self.fragmentation.effective_cardinality(schema, i);
                skew.level_weights(r.dimension.index(), effective)
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        let mut coords = vec![0u64; self.radices.len()];
        for _ in 0..n {
            let w: f64 = coords
                .iter()
                .zip(&per_dim)
                .map(|(&c, weights)| weights[c as usize])
                .product();
            out.push(w);
            // Odometer increment in logical order.
            for pos in (0..coords.len()).rev() {
                coords[pos] += 1;
                if coords[pos] < self.radices[pos] {
                    break;
                }
                coords[pos] = 0;
            }
        }
        out
    }

    /// Fragment row counts under `skew`, apportioned so they sum exactly to
    /// the fact row count (largest-remainder rounding).
    pub fn fragment_rows(&self, schema: &StarSchema, skew: &SkewModel) -> Vec<u64> {
        apportion(self.fact_rows, &self.fragment_weights(schema, skew))
    }
}

/// Splits `total` into integer parts proportional to `weights`, preserving
/// the exact total via largest-remainder rounding.
///
/// # Panics
///
/// Panics on an empty or non-positive weight vector.
pub fn apportion(total: u64, weights: &[f64]) -> Vec<u64> {
    assert!(!weights.is_empty(), "apportion needs at least one weight");
    let sum: f64 = weights.iter().sum();
    assert!(sum > 0.0, "apportion needs positive total weight");
    let mut parts: Vec<u64> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact = total as f64 * (w / sum);
        let floor = exact.floor() as u64;
        parts.push(floor);
        assigned += floor;
        remainders.push((i, exact - floor as f64));
    }
    let mut leftover = total - assigned;
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for (i, _) in remainders {
        if leftover == 0 {
            break;
        }
        parts[i] += 1;
        leftover -= 1;
    }
    parts
}

/// Extension trait connecting a [`StarSchema`] to a [`SkewModel`].
pub trait SkewModelExt {
    /// Builds a skew model whose bottom cardinalities follow the schema.
    fn skew_model(&self, configs: &[warlock_skew::DimensionSkew]) -> SkewModel;
    /// Builds the uniform skew model for the schema.
    fn uniform_skew_model(&self) -> SkewModel;
}

impl SkewModelExt for StarSchema {
    fn skew_model(&self, configs: &[warlock_skew::DimensionSkew]) -> SkewModel {
        let cards: Vec<u64> = self
            .dimensions()
            .iter()
            .map(|d| d.bottom().cardinality())
            .collect();
        SkewModel::new(&cards, configs)
    }

    fn uniform_skew_model(&self) -> SkewModel {
        let cards: Vec<u64> = self
            .dimensions()
            .iter()
            .map(|d| d.bottom().cardinality())
            .collect();
        SkewModel::uniform(&cards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_skew::DimensionSkew;

    fn schema() -> StarSchema {
        apb1_like_schema(Apb1Config::default()).unwrap()
    }

    fn layout(pairs: &[(u16, u16)]) -> FragmentLayout {
        FragmentLayout::new(&schema(), Fragmentation::from_pairs(pairs).unwrap(), 0)
    }

    #[test]
    fn baseline_layout_is_single_fragment() {
        let l = FragmentLayout::new(&schema(), Fragmentation::none(), 0);
        assert_eq!(l.num_fragments(), 1);
        assert_eq!(l.coords_of(0), Vec::<u64>::new());
        assert_eq!(l.index_of(&[]), 0);
        assert_eq!(l.uniform_rows_per_fragment(), l.fact_rows() as f64);
    }

    #[test]
    fn mixed_radix_round_trip() {
        // product.division (5) × time.quarter (8)
        let l = layout(&[(0, 0), (2, 1)]);
        assert_eq!(l.num_fragments(), 40);
        assert_eq!(l.radices(), &[5, 8]);
        for idx in 0..40 {
            let coords = l.coords_of(idx);
            assert_eq!(l.index_of(&coords), idx);
        }
        // Logical order: dim 0 outermost.
        assert_eq!(l.coords_of(0), vec![0, 0]);
        assert_eq!(l.coords_of(7), vec![0, 7]);
        assert_eq!(l.coords_of(8), vec![1, 0]);
        assert_eq!(l.coords_of(39), vec![4, 7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coords_of_rejects_overflow() {
        let l = layout(&[(0, 0)]);
        let _ = l.coords_of(5);
    }

    #[test]
    #[should_panic(expected = "out of radix")]
    fn index_of_rejects_bad_coordinate() {
        let l = layout(&[(0, 0)]);
        let _ = l.index_of(&[5]);
    }

    #[test]
    fn uniform_weights_are_equal_and_sum_to_one() {
        let s = schema();
        let l = layout(&[(0, 0), (3, 0)]); // 5 × 9 = 45 fragments
        let w = l.fragment_weights(&s, &s.uniform_skew_model());
        assert_eq!(w.len(), 45);
        for &x in &w {
            assert!((x - 1.0 / 45.0).abs() < 1e-12);
        }
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_weights_follow_zipf_products() {
        let s = schema();
        let skew = s.skew_model(&[
            DimensionSkew::zipf(1.0),
            DimensionSkew::UNIFORM,
            DimensionSkew::UNIFORM,
            DimensionSkew::UNIFORM,
        ]);
        let l = layout(&[(0, 0), (2, 0)]); // division (5) × year (2)
        let w = l.fragment_weights(&s, &skew);
        assert_eq!(w.len(), 10);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Division 0 aggregates the heaviest zipf members → its fragments
        // outweigh division 4's.
        assert!(w[0] > w[8]);
        // Uniform time dimension: the two fragments of one division tie.
        assert!((w[0] - w[1]).abs() < 1e-12);
    }

    #[test]
    fn fragment_rows_conserve_total() {
        let s = schema();
        let skew = s.skew_model(&[
            DimensionSkew::zipf(0.8),
            DimensionSkew::zipf(0.5),
            DimensionSkew::UNIFORM,
            DimensionSkew::UNIFORM,
        ]);
        let l = layout(&[(0, 1), (1, 0)]); // line (15) × retailer (90)
        let rows = l.fragment_rows(&s, &skew);
        assert_eq!(rows.len(), 15 * 90);
        assert_eq!(rows.iter().sum::<u64>(), s.fact_rows(0));
    }

    #[test]
    fn ranged_layout_matches_parent_level_under_skew() {
        let s = schema();
        let skew = s.skew_model(&[
            DimensionSkew::zipf(0.9),
            DimensionSkew::UNIFORM,
            DimensionSkew::UNIFORM,
            DimensionSkew::UNIFORM,
        ]);
        let ranged = FragmentLayout::new(
            &s,
            Fragmentation::from_ranged_pairs(&[(0, 5, 10)]).unwrap(),
            0,
        );
        let parent = FragmentLayout::new(&s, Fragmentation::from_pairs(&[(0, 4)]).unwrap(), 0);
        assert_eq!(ranged.num_fragments(), parent.num_fragments());
        // Identical skewed weights: grouping 10 codes equals one class.
        let wr = ranged.fragment_weights(&s, &skew);
        let wp = parent.fragment_weights(&s, &skew);
        for (a, b) in wr.iter().zip(&wp) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn ranged_layout_intermediate_radix() {
        let s = schema();
        // month[r=3] × channel: radices 8 × 9.
        let l = FragmentLayout::new(
            &s,
            Fragmentation::from_ranged_pairs(&[(2, 2, 3), (3, 0, 1)]).unwrap(),
            0,
        );
        assert_eq!(l.radices(), &[8, 9]);
        assert_eq!(l.num_fragments(), 72);
        assert_eq!(l.coords_of(9), vec![1, 0]);
    }

    #[test]
    fn apportion_preserves_total_and_proportions() {
        let parts = apportion(100, &[1.0, 1.0, 2.0]);
        assert_eq!(parts.iter().sum::<u64>(), 100);
        assert_eq!(parts, vec![25, 25, 50]);

        let parts = apportion(10, &[1.0, 1.0, 1.0]);
        assert_eq!(parts.iter().sum::<u64>(), 10);
        // Largest remainder: 3.33.. each; first two get the extra.
        assert_eq!(parts, vec![4, 3, 3]);

        let parts = apportion(0, &[1.0, 2.0]);
        assert_eq!(parts, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn apportion_rejects_empty() {
        let _ = apportion(10, &[]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_construction() {
        let s = schema();
        let mut scratch = LayoutScratch::new();
        // Candidates of decreasing then increasing arity: stale radices or
        // strides from a wider previous candidate must never leak.
        let candidates = [
            Fragmentation::from_pairs(&[(0, 0), (2, 1), (3, 0)]).unwrap(),
            Fragmentation::from_pairs(&[(1, 0)]).unwrap(),
            Fragmentation::none(),
            Fragmentation::from_ranged_pairs(&[(2, 2, 3), (3, 0, 1)]).unwrap(),
            Fragmentation::from_pairs(&[(0, 1), (1, 0)]).unwrap(),
        ];
        for frag in &candidates {
            let fresh = FragmentLayout::new(&s, frag.clone(), 0);
            let reused = FragmentLayout::new_in(&mut scratch, &s, frag.clone(), 0);
            assert_eq!(fresh, reused, "scratch-built layout diverged for {frag:?}");
            let back = reused.recycle(&mut scratch);
            assert_eq!(&back, frag, "recycle must return the same fragmentation");
        }
    }

    #[test]
    fn recycle_keeps_buffer_capacity() {
        let s = schema();
        let mut scratch = LayoutScratch::new();
        let wide = Fragmentation::from_pairs(&[(0, 0), (1, 0), (2, 0), (3, 0)]).unwrap();
        let l = FragmentLayout::new_in(&mut scratch, &s, wide, 0);
        let _ = l.recycle(&mut scratch);
        assert!(scratch.radices.capacity() >= 4);
        assert!(scratch.strides.capacity() >= 4);
        assert!(scratch.radices.is_empty() && scratch.strides.is_empty());
    }

    #[test]
    fn schema_skew_model_helpers() {
        let s = schema();
        let uni = s.uniform_skew_model();
        assert_eq!(uni.num_dimensions(), 4);
        assert!(uni.is_uniform());
        assert_eq!(uni.bottom_weights(0).len(), 9000);
    }
}
