//! Fragmentation candidates and their enumeration.

use std::fmt;

use warlock_schema::{DimensionId, LevelId, LevelRef, StarSchema};

/// Errors raised when constructing a fragmentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateError {
    /// Two fragmentation attributes reference the same dimension.
    DuplicateDimension {
        /// The dimension referenced twice.
        dimension: DimensionId,
    },
    /// A fragmentation attribute references a dimension or level the schema
    /// does not have.
    UnknownAttribute {
        /// The offending reference.
        level_ref: LevelRef,
    },
    /// A range size is zero or does not divide the level's fan-out.
    BadRange {
        /// The offending reference.
        level_ref: LevelRef,
        /// The invalid range size.
        range: u64,
        /// The level's fan-out (children per parent).
        fanout: u64,
    },
    /// The candidate's fragment count exceeds `u64::MAX`, so it cannot
    /// be laid out or costed — only pathologically deep cross products
    /// reach this.
    FragmentOverflow {
        /// The overflowing fragment count.
        fragments: u128,
    },
}

impl fmt::Display for CandidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateDimension { dimension } => {
                write!(
                    f,
                    "dimension {dimension} referenced by two fragmentation attributes"
                )
            }
            Self::UnknownAttribute { level_ref } => {
                write!(f, "unknown fragmentation attribute {level_ref}")
            }
            Self::BadRange {
                level_ref,
                range,
                fanout,
            } => write!(
                f,
                "range size {range} on {level_ref} must be >= 1 and divide the fan-out {fanout}"
            ),
            Self::FragmentOverflow { fragments } => write!(
                f,
                "fragment count {fragments} overflows the evaluable range (u64)"
            ),
        }
    }
}

impl std::error::Error for CandidateError {}

/// One MDHF fragmentation candidate: at most one fragmentation attribute
/// (hierarchy level) per dimension, each with an attribute *range size*.
///
/// MDHF is a multi-dimensional hierarchical **range** fragmentation: every
/// fragmentation attribute groups `range` consecutive member values into
/// one fragment coordinate. The tool's evaluation space uses "point"
/// fragmentations (range = 1, the default); larger ranges are supported as
/// the general MDHF case. A range must divide the level's fan-out so
/// fragment boundaries never cross parent boundaries — this keeps the
/// query→fragment matching exact for coarser predicates.
///
/// The empty candidate (no attributes) models the unfragmented fact table —
/// a single fragment — and serves as the natural baseline. Attributes are
/// kept sorted by dimension id; that order also defines the logical
/// (mixed-radix) fragment order used by the round-robin allocator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fragmentation {
    attributes: Vec<LevelRef>,
    /// Range size per attribute, parallel to `attributes`; 1 = point.
    ranges: Vec<u64>,
}

impl Fragmentation {
    /// The unfragmented baseline candidate.
    pub fn none() -> Self {
        Self {
            attributes: Vec::new(),
            ranges: Vec::new(),
        }
    }

    /// Builds a point candidate from fragmentation attributes.
    ///
    /// # Errors
    ///
    /// [`CandidateError::DuplicateDimension`] if two attributes reference
    /// the same dimension.
    pub fn new(attributes: Vec<LevelRef>) -> Result<Self, CandidateError> {
        let ranges = vec![1; attributes.len()];
        Self::new_ranged(attributes, ranges)
    }

    /// Builds a ranged candidate: one `(attribute, range)` pair per
    /// fragmentation dimension.
    ///
    /// # Errors
    ///
    /// [`CandidateError::DuplicateDimension`] on repeated dimensions;
    /// [`CandidateError::BadRange`] on a zero range (fan-out divisibility
    /// is checked against the schema in [`validate`](Self::validate)).
    pub fn new_ranged(attributes: Vec<LevelRef>, ranges: Vec<u64>) -> Result<Self, CandidateError> {
        assert_eq!(attributes.len(), ranges.len(), "one range per attribute");
        let mut paired: Vec<(LevelRef, u64)> = attributes.into_iter().zip(ranges).collect();
        paired.sort_by_key(|&(r, _)| r);
        for pair in paired.windows(2) {
            if pair[0].0.dimension == pair[1].0.dimension {
                return Err(CandidateError::DuplicateDimension {
                    dimension: pair[0].0.dimension,
                });
            }
        }
        for &(level_ref, range) in &paired {
            if range == 0 {
                return Err(CandidateError::BadRange {
                    level_ref,
                    range,
                    fanout: 0,
                });
            }
        }
        let (attributes, ranges) = paired.into_iter().unzip();
        Ok(Self { attributes, ranges })
    }

    /// Trusted constructor for the enumeration engine: `attributes`
    /// must already be sorted by dimension with no duplicates, one
    /// positive range per attribute.
    pub(crate) fn from_parts(attributes: Vec<LevelRef>, ranges: Vec<u64>) -> Self {
        debug_assert_eq!(attributes.len(), ranges.len());
        debug_assert!(attributes
            .windows(2)
            .all(|w| w[0].dimension < w[1].dimension));
        Self { attributes, ranges }
    }

    /// Convenience constructor from `(dimension, level)` index pairs
    /// (point fragmentation).
    pub fn from_pairs(pairs: &[(u16, u16)]) -> Result<Self, CandidateError> {
        Self::new(pairs.iter().map(|&(d, l)| LevelRef::new(d, l)).collect())
    }

    /// Convenience constructor from `(dimension, level, range)` triples.
    pub fn from_ranged_pairs(pairs: &[(u16, u16, u64)]) -> Result<Self, CandidateError> {
        Self::new_ranged(
            pairs.iter().map(|&(d, l, _)| LevelRef::new(d, l)).collect(),
            pairs.iter().map(|&(_, _, r)| r).collect(),
        )
    }

    /// The fragmentation attributes, sorted by dimension.
    #[inline]
    pub fn attributes(&self) -> &[LevelRef] {
        &self.attributes
    }

    /// Range sizes, parallel to [`attributes`](Self::attributes).
    #[inline]
    pub fn ranges(&self) -> &[u64] {
        &self.ranges
    }

    /// Whether every attribute is a point attribute (range 1).
    pub fn is_point(&self) -> bool {
        self.ranges.iter().all(|&r| r == 1)
    }

    /// Effective fragment-coordinate cardinality of attribute `i`:
    /// `cardinality(level) / range`.
    pub fn effective_cardinality(&self, schema: &StarSchema, i: usize) -> u64 {
        let card = schema
            .cardinality(self.attributes[i])
            .expect("validated candidate");
        card / self.ranges[i]
    }

    /// Effective cardinality of the attribute on `dimension`, if that
    /// dimension is part of the candidate.
    pub fn effective_cardinality_on(
        &self,
        schema: &StarSchema,
        dimension: DimensionId,
    ) -> Option<u64> {
        self.attributes
            .iter()
            .position(|r| r.dimension == dimension)
            .map(|i| self.effective_cardinality(schema, i))
    }

    /// Number of fragmentation dimensions.
    #[inline]
    pub fn dimensionality(&self) -> usize {
        self.attributes.len()
    }

    /// Whether this is the unfragmented baseline.
    #[inline]
    pub fn is_none(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The fragmentation level on `dimension`, if that dimension is part of
    /// the candidate.
    pub fn level_on(&self, dimension: DimensionId) -> Option<LevelId> {
        self.attributes
            .iter()
            .find(|r| r.dimension == dimension)
            .map(|r| r.level)
    }

    /// Validates the attributes (and range divisibility) against a schema.
    pub fn validate(&self, schema: &StarSchema) -> Result<(), CandidateError> {
        for (&r, &range) in self.attributes.iter().zip(&self.ranges) {
            let Ok(dim) = schema.dimension(r.dimension) else {
                return Err(CandidateError::UnknownAttribute { level_ref: r });
            };
            if dim.level(r.level).is_err() {
                return Err(CandidateError::UnknownAttribute { level_ref: r });
            }
            let fanout = dim.fanout(r.level).expect("level exists");
            if range == 0 || !fanout.is_multiple_of(range) {
                return Err(CandidateError::BadRange {
                    level_ref: r,
                    range,
                    fanout,
                });
            }
        }
        Ok(())
    }

    /// Total number of fragments: the product of *effective*
    /// fragmentation-attribute cardinalities (1 for the unfragmented
    /// baseline). Computed in `u128` because full bottom-level cross
    /// products overflow 64 bits only in pathological schemas, but can
    /// still be very large.
    pub fn num_fragments(&self, schema: &StarSchema) -> u128 {
        self.attributes
            .iter()
            .zip(&self.ranges)
            .map(|(&r, &range)| {
                (schema.cardinality(r).expect("validated candidate") / range) as u128
            })
            .product()
    }

    /// Human-readable label like `product.class × time.month`; ranged
    /// attributes carry a `[r=N]` suffix.
    pub fn label(&self, schema: &StarSchema) -> String {
        if self.is_none() {
            return "(unfragmented)".to_owned();
        }
        let parts: Vec<String> = self
            .attributes
            .iter()
            .zip(&self.ranges)
            .map(|(&r, &range)| {
                let d = schema.dimension(r.dimension).expect("validated");
                let l = d.level(r.level).expect("validated");
                if range == 1 {
                    format!("{}.{}", d.name(), l.name())
                } else {
                    format!("{}.{}[r={range}]", d.name(), l.name())
                }
            })
            .collect();
        parts.join(" × ")
    }
}

impl fmt::Display for Fragmentation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "(unfragmented)");
        }
        let parts: Vec<String> = self
            .attributes
            .iter()
            .zip(&self.ranges)
            .map(|(r, &range)| {
                if range == 1 {
                    r.to_string()
                } else {
                    format!("{r}r{range}")
                }
            })
            .collect();
        write!(f, "{}", parts.join("x"))
    }
}

/// Enumerates every "point" fragmentation candidate of `schema` with at
/// most `max_dimensionality` fragmentation dimensions, including the
/// unfragmented baseline.
///
/// For each dimension the choice is "not used" or one of its levels, so the
/// full space has `Π (depth(d) + 1)` candidates; `max_dimensionality`
/// trims deep combinations. The evaluation space deliberately contains only
/// point fragmentations (attribute range size = 1), "which keeps enough
/// potential to achieve a sufficient number of fragments" (§3.2).
///
/// This is a thin materializing wrapper over the lazy
/// [`CandidateSource::point`](crate::CandidateSource::point) generator —
/// use the source directly when the space may be large.
pub fn enumerate_candidates(schema: &StarSchema, max_dimensionality: usize) -> Vec<Fragmentation> {
    crate::CandidateSource::point(schema, max_dimensionality).collect()
}

/// Enumerates fragmentation candidates including *ranged* attributes: for
/// every point candidate of [`enumerate_candidates`], additionally tries
/// each range size from `range_options` on every attribute whose fan-out it
/// divides (ranges equal to the full fan-out are skipped — they duplicate
/// fragmenting on the parent level).
///
/// The point-only space is the paper's default; this is the general-MDHF
/// extension for schemas whose hierarchies are too coarse-grained between
/// adjacent levels.
///
/// This is a thin materializing wrapper over the lazy
/// [`CandidateSource::ranged`](crate::CandidateSource::ranged) generator —
/// use the source directly when the space may be large.
pub fn enumerate_candidates_ranged(
    schema: &StarSchema,
    max_dimensionality: usize,
    range_options: &[u64],
) -> Vec<Fragmentation> {
    crate::CandidateSource::ranged(schema, max_dimensionality, range_options).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};

    fn schema() -> StarSchema {
        apb1_like_schema(Apb1Config::default()).unwrap()
    }

    #[test]
    fn construction_sorts_and_rejects_duplicates() {
        let f = Fragmentation::from_pairs(&[(2, 1), (0, 4)]).unwrap();
        assert_eq!(f.attributes(), &[LevelRef::new(0, 4), LevelRef::new(2, 1)]);
        let err = Fragmentation::from_pairs(&[(0, 1), (0, 2)]).unwrap_err();
        assert!(matches!(err, CandidateError::DuplicateDimension { .. }));
    }

    #[test]
    fn baseline_candidate() {
        let f = Fragmentation::none();
        assert!(f.is_none());
        assert_eq!(f.dimensionality(), 0);
        assert_eq!(f.num_fragments(&schema()), 1);
        assert_eq!(f.label(&schema()), "(unfragmented)");
    }

    #[test]
    fn num_fragments_is_cardinality_product() {
        let s = schema();
        // product.class (900) × time.month (24)
        let f = Fragmentation::from_pairs(&[(0, 4), (2, 2)]).unwrap();
        assert_eq!(f.num_fragments(&s), 900 * 24);
        assert_eq!(f.label(&s), "product.class × time.month");
    }

    #[test]
    fn level_lookup() {
        let f = Fragmentation::from_pairs(&[(0, 4), (2, 2)]).unwrap();
        assert_eq!(f.level_on(DimensionId(0)), Some(LevelId(4)));
        assert_eq!(f.level_on(DimensionId(1)), None);
    }

    #[test]
    fn validate_against_schema() {
        let s = schema();
        assert!(Fragmentation::from_pairs(&[(0, 5)])
            .unwrap()
            .validate(&s)
            .is_ok());
        assert!(Fragmentation::from_pairs(&[(0, 6)])
            .unwrap()
            .validate(&s)
            .is_err());
        assert!(Fragmentation::from_pairs(&[(9, 0)])
            .unwrap()
            .validate(&s)
            .is_err());
    }

    #[test]
    fn enumeration_counts() {
        let s = schema();
        // (6+1)(2+1)(3+1)(1+1) = 168 candidates including the baseline.
        let all = enumerate_candidates(&s, 4);
        assert_eq!(all.len(), 7 * 3 * 4 * 2);
        // Exactly one baseline.
        assert_eq!(all.iter().filter(|f| f.is_none()).count(), 1);
        // All unique.
        let mut set = std::collections::HashSet::new();
        for f in &all {
            assert!(set.insert(f.clone()), "duplicate candidate {f}");
        }
        // All valid.
        for f in &all {
            f.validate(&s).unwrap();
        }
    }

    #[test]
    fn enumeration_respects_max_dimensionality() {
        let s = schema();
        let shallow = enumerate_candidates(&s, 1);
        // baseline + Σ depth(d) = 1 + 6 + 2 + 3 + 1 = 13
        assert_eq!(shallow.len(), 13);
        assert!(shallow.iter().all(|f| f.dimensionality() <= 1));

        let two = enumerate_candidates(&s, 2);
        assert!(two.iter().all(|f| f.dimensionality() <= 2));
        // 1 + 12 + (6*2 + 6*3 + 6*1 + 2*3 + 2*1 + 3*1) = 1 + 12 + 47 = 60
        assert_eq!(two.len(), 60);
    }

    #[test]
    fn display_and_label() {
        let s = schema();
        let f = Fragmentation::from_pairs(&[(1, 0), (3, 0)]).unwrap();
        assert_eq!(f.to_string(), "d1.l0xd3.l0");
        assert_eq!(f.label(&s), "customer.retailer × channel.base");
    }

    #[test]
    fn enumeration_zero_dimensionality_is_baseline_only() {
        let s = schema();
        let none = enumerate_candidates(&s, 0);
        assert_eq!(none.len(), 1);
        assert!(none[0].is_none());
    }

    #[test]
    fn ranged_candidate_basics() {
        let s = schema();
        // time.month with range 3 → 8 effective coordinates ( = quarters).
        let f = Fragmentation::from_ranged_pairs(&[(2, 2, 3)]).unwrap();
        f.validate(&s).unwrap();
        assert!(!f.is_point());
        assert_eq!(f.num_fragments(&s), 8);
        assert_eq!(f.effective_cardinality(&s, 0), 8);
        assert_eq!(f.effective_cardinality_on(&s, DimensionId(2)), Some(8));
        assert_eq!(f.label(&s), "time.month[r=3]");
        assert_eq!(f.to_string(), "d2.l2r3");
    }

    #[test]
    fn point_candidates_report_as_point() {
        let f = Fragmentation::from_pairs(&[(2, 2)]).unwrap();
        assert!(f.is_point());
        assert_eq!(f.ranges(), &[1]);
    }

    #[test]
    fn range_must_divide_fanout() {
        let s = schema();
        // month fan-out within quarter is 3; range 2 does not divide it.
        let f = Fragmentation::from_ranged_pairs(&[(2, 2, 2)]).unwrap();
        assert!(matches!(
            f.validate(&s).unwrap_err(),
            CandidateError::BadRange { .. }
        ));
        // Zero range rejected at construction.
        assert!(matches!(
            Fragmentation::from_ranged_pairs(&[(2, 2, 0)]).unwrap_err(),
            CandidateError::BadRange { .. }
        ));
        // product.code fan-out is 10: ranges 2, 5, 10 divide it.
        for r in [2u64, 5, 10] {
            let f = Fragmentation::from_ranged_pairs(&[(0, 5, r)]).unwrap();
            f.validate(&s).unwrap();
            assert_eq!(f.num_fragments(&s), (9000 / r) as u128);
        }
    }

    #[test]
    fn full_fanout_range_equals_parent_level_cardinality() {
        let s = schema();
        // code[r=10] has the same effective coordinates as class.
        let ranged = Fragmentation::from_ranged_pairs(&[(0, 5, 10)]).unwrap();
        let parent = Fragmentation::from_pairs(&[(0, 4)]).unwrap();
        assert_eq!(ranged.num_fragments(&s), parent.num_fragments(&s));
    }

    #[test]
    fn ranged_enumeration_extends_the_point_space() {
        let s = schema();
        let points = enumerate_candidates(&s, 2);
        let ranged = enumerate_candidates_ranged(&s, 2, &[2, 3, 5]);
        assert!(ranged.len() > points.len());
        // Every point candidate is present.
        for p in &points {
            assert!(ranged.contains(p), "missing point candidate {p}");
        }
        // Every enumerated candidate validates (divisibility respected).
        for c in &ranged {
            c.validate(&s).unwrap();
        }
        // Exactly one baseline.
        assert_eq!(ranged.iter().filter(|c| c.is_none()).count(), 1);
    }
}
