//! Per-query disk access profiles.
//!
//! The analysis layer visualizes "a disk access profile per query class"
//! (§3.3): how one query's I/O work distributes over the disks of a given
//! allocation. The profile is also the *exact* response-time estimate —
//! the declustered approximation of the prediction layer replaced by the
//! true per-disk maxima of the chosen placement.

use crate::Allocation;

/// Distribution of one query's device time over the disks.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskAccessProfile {
    /// Busy milliseconds per disk.
    pub per_disk_ms: Vec<f64>,
    /// Fragments accessed per disk.
    pub per_disk_fragments: Vec<u32>,
}

impl DiskAccessProfile {
    /// Builds the profile of a query that spends `per_fragment_ms` device
    /// time on each fragment in `accessed` (fragment indices into the
    /// allocation).
    ///
    /// # Panics
    ///
    /// Panics if a fragment index is out of range.
    pub fn build(allocation: &Allocation, accessed: &[usize], per_fragment_ms: f64) -> Self {
        let disks = allocation.num_disks() as usize;
        let mut per_disk_ms = vec![0.0; disks];
        let mut per_disk_fragments = vec![0u32; disks];
        for &f in accessed {
            let d = allocation.disk_of(f) as usize;
            per_disk_ms[d] += per_fragment_ms;
            per_disk_fragments[d] += 1;
        }
        Self {
            per_disk_ms,
            per_disk_fragments,
        }
    }

    /// Builds a profile with heterogeneous per-fragment times.
    pub fn build_weighted(allocation: &Allocation, accessed: &[(usize, f64)]) -> Self {
        let disks = allocation.num_disks() as usize;
        let mut per_disk_ms = vec![0.0; disks];
        let mut per_disk_fragments = vec![0u32; disks];
        for &(f, ms) in accessed {
            let d = allocation.disk_of(f) as usize;
            per_disk_ms[d] += ms;
            per_disk_fragments[d] += 1;
        }
        Self {
            per_disk_ms,
            per_disk_fragments,
        }
    }

    /// Total device busy time.
    pub fn total_ms(&self) -> f64 {
        self.per_disk_ms.iter().sum()
    }

    /// The busiest disk's time — the pure I/O response-time bound.
    pub fn max_ms(&self) -> f64 {
        self.per_disk_ms.iter().copied().fold(0.0, f64::max)
    }

    /// Number of disks that serve at least one fragment.
    pub fn disks_hit(&self) -> u32 {
        self.per_disk_fragments.iter().filter(|&&c| c > 0).count() as u32
    }
}

/// Exact response time of a profiled query: the busiest disk bounds I/O
/// parallelism, total work over `processors` bounds processing
/// parallelism, and the architecture `overhead` scales the result — same
/// composition as the prediction layer's estimate, but on the real
/// placement.
pub fn profile_response_ms(profile: &DiskAccessProfile, processors: u32, overhead: f64) -> f64 {
    let rt_io = profile.max_ms();
    let rt_proc = profile.total_ms() / f64::from(processors.max(1));
    rt_io.max(rt_proc) * overhead.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round_robin;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} !~ {b}");
    }

    #[test]
    fn profile_counts_and_times() {
        let alloc = round_robin(vec![1; 8], 4);
        // Access fragments 0..4 → one per disk.
        let p = DiskAccessProfile::build(&alloc, &[0, 1, 2, 3], 10.0);
        assert_eq!(p.per_disk_fragments, vec![1, 1, 1, 1]);
        assert_close(p.total_ms(), 40.0, 1e-12);
        assert_close(p.max_ms(), 10.0, 1e-12);
        assert_eq!(p.disks_hit(), 4);
    }

    #[test]
    fn contiguous_access_parallelizes_fully() {
        let alloc = round_robin(vec![1; 24], 8);
        let accessed: Vec<usize> = (0..16).collect();
        let p = DiskAccessProfile::build(&alloc, &accessed, 5.0);
        // 16 fragments round-robin over 8 disks → 2 each.
        assert_eq!(p.disks_hit(), 8);
        assert_close(p.max_ms(), 10.0, 1e-12);
        assert_close(profile_response_ms(&p, 8, 1.0), 10.0, 1e-12);
    }

    #[test]
    fn strided_access_can_collide() {
        // Stride equal to the disk count lands every fragment on one disk —
        // the pathological clustering round-robin cannot fix.
        let alloc = round_robin(vec![1; 32], 4);
        let accessed: Vec<usize> = (0..32).step_by(4).collect();
        let p = DiskAccessProfile::build(&alloc, &accessed, 5.0);
        assert_eq!(p.disks_hit(), 1);
        assert_close(p.max_ms(), 40.0, 1e-12);
    }

    #[test]
    fn processor_cap_applies() {
        let alloc = round_robin(vec![1; 8], 8);
        let p = DiskAccessProfile::build(&alloc, &[0, 1, 2, 3, 4, 5, 6, 7], 10.0);
        // 8 disks hit but 2 processors: 80/2 = 40 ms.
        assert_close(profile_response_ms(&p, 2, 1.0), 40.0, 1e-12);
        assert_close(profile_response_ms(&p, 8, 1.0), 10.0, 1e-12);
        assert_close(profile_response_ms(&p, 8, 1.05), 10.5, 1e-12);
    }

    #[test]
    fn weighted_profile() {
        let alloc = round_robin(vec![1; 4], 2);
        let p = DiskAccessProfile::build_weighted(&alloc, &[(0, 10.0), (1, 20.0), (2, 5.0)]);
        assert_close(p.per_disk_ms[0], 15.0, 1e-12);
        assert_close(p.per_disk_ms[1], 20.0, 1e-12);
        assert_eq!(p.per_disk_fragments, vec![2, 1]);
    }

    #[test]
    fn empty_access_is_free() {
        let alloc = round_robin(vec![1; 4], 2);
        let p = DiskAccessProfile::build(&alloc, &[], 10.0);
        assert_eq!(p.total_ms(), 0.0);
        assert_eq!(p.disks_hit(), 0);
        assert_eq!(profile_response_ms(&p, 4, 1.0), 0.0);
    }
}
