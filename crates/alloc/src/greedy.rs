//! Greedy size-based allocation.

use crate::{Allocation, AllocationScheme};

/// Places fragments onto disks greedily: fragments ordered by decreasing
/// size, each onto the currently least occupied disk (ties broken by the
/// lowest disk id, then the lowest fragment index — fully deterministic).
///
/// This is the paper's skew counter-measure: "the scheme stores fragments,
/// ordered by decreasing size, onto the least occupied disk at a time."
/// It is the classic LPT (longest processing time) heuristic, whose maximum
/// occupancy is within `4/3 − 1/(3·disks)` of optimal.
pub fn greedy_by_size(sizes: Vec<u64>, num_disks: u32) -> Allocation {
    assert!(num_disks > 0, "greedy_by_size needs at least one disk");
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]).then(a.cmp(&b)));

    // Binary heap of (occupancy, disk) — min by occupancy then disk id.
    // With typical disk counts (≤ a few hundred) a linear scan is fast and
    // allocation-free; profiling showed no need for a heap.
    let mut occupancy = vec![0u64; num_disks as usize];
    let mut disk_of = vec![0u32; sizes.len()];
    for f in order {
        let mut best = 0usize;
        for d in 1..occupancy.len() {
            if occupancy[d] < occupancy[best] {
                best = d;
            }
        }
        disk_of[f] = best as u32;
        occupancy[best] += sizes[f];
    }
    Allocation::new(AllocationScheme::GreedySize, num_disks, disk_of, sizes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn places_every_fragment_once() {
        let a = greedy_by_size(vec![5, 3, 8, 1, 9, 2], 3);
        assert_eq!(a.num_fragments(), 6);
        assert_eq!(
            a.fragment_counts().iter().sum::<u32>(),
            6,
            "every fragment placed exactly once"
        );
    }

    #[test]
    fn balances_skewed_sizes_better_than_round_robin() {
        // Zipf-ish sizes.
        let sizes: Vec<u64> = (1..=64u64).map(|i| 10_000 / i).collect();
        let greedy = greedy_by_size(sizes.clone(), 8).occupancy_stats();
        let rr = crate::round_robin(sizes, 8).occupancy_stats();
        assert!(
            greedy.imbalance <= rr.imbalance + 1e-12,
            "greedy {} should not exceed round-robin {}",
            greedy.imbalance,
            rr.imbalance
        );
        // The single largest fragment (10 000 bytes) exceeds the per-disk
        // mean, so it bounds the best achievable max occupancy; greedy
        // should get within a whisker of that bound.
        assert!(greedy.max_bytes <= 10_000 + 500, "max {}", greedy.max_bytes);
    }

    #[test]
    fn lpt_bound_holds() {
        // Max occupancy ≤ (4/3 − 1/(3m)) × optimal; use mean as an
        // optimistic lower bound of optimal.
        let sizes: Vec<u64> = (0..100u64).map(|i| (i * 37) % 500 + 1).collect();
        let m = 7u32;
        let a = greedy_by_size(sizes.clone(), m);
        let stats = a.occupancy_stats();
        let total: u64 = sizes.iter().sum();
        let lower_bound_opt =
            (total as f64 / f64::from(m)).max(*sizes.iter().max().unwrap() as f64);
        let bound = (4.0 / 3.0 - 1.0 / (3.0 * f64::from(m))) * lower_bound_opt;
        assert!(
            stats.max_bytes as f64 <= bound + 1e-9,
            "LPT bound violated: {} > {}",
            stats.max_bytes,
            bound
        );
    }

    #[test]
    fn deterministic_under_ties() {
        let a = greedy_by_size(vec![5, 5, 5, 5], 2);
        let b = greedy_by_size(vec![5, 5, 5, 5], 2);
        assert_eq!(a.placements(), b.placements());
        // Equal sizes alternate disks.
        assert_eq!(a.occupancy(), vec![10, 10]);
    }

    #[test]
    fn one_giant_fragment_isolated() {
        let a = greedy_by_size(vec![1000, 10, 10, 10, 10, 10], 2);
        // The giant goes to disk 0, everything else to disk 1.
        let giant_disk = a.disk_of(0);
        for f in 1..6 {
            assert_ne!(a.disk_of(f), giant_disk);
        }
    }

    #[test]
    fn zero_size_fragments_are_fine() {
        let a = greedy_by_size(vec![0, 0, 5], 2);
        assert_eq!(a.num_fragments(), 3);
        assert_eq!(a.occupancy().iter().sum::<u64>(), 5);
    }
}
