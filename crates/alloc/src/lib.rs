//! Physical disk allocation for WARLOCK.
//!
//! "We support a logical round-robin allocation scheme where fact table and
//! bitmap fragments are stored on disk according to a logical order of the
//! fragmentation dimensions. Under notable data skew we apply a greedy
//! size-based allocation scheme to keep disk occupancy balanced. The scheme
//! stores fragments, ordered by decreasing size, onto the least occupied
//! disk at a time." (paper, §2)
//!
//! This crate implements both schemes, an automatic policy that switches on
//! measured size skew, per-disk occupancy statistics, and the per-query
//! disk access profiles the analysis layer visualizes.

#![warn(missing_docs)]

//!
//! # Example
//!
//! ```
//! use warlock_alloc::{allocate, AllocationPolicy, AllocationScheme};
//!
//! // Uniform fragments go round-robin; a skewed set switches to greedy.
//! let uniform = allocate(vec![100; 32], 8, AllocationPolicy::default());
//! assert_eq!(uniform.scheme(), AllocationScheme::RoundRobin);
//!
//! let mut skewed = vec![100u64; 32];
//! skewed[0] = 100_000;
//! let alloc = allocate(skewed, 8, AllocationPolicy::default());
//! assert_eq!(alloc.scheme(), AllocationScheme::GreedySize);
//! // Greedy isolates the giant fragment on its own disk.
//! let giant_disk = alloc.disk_of(0);
//! assert!((1..32).all(|f| alloc.disk_of(f) != giant_disk));
//! ```

mod allocation;
pub mod coaccess;
mod greedy;
mod heat;
mod policy;
mod profile;
mod round_robin;

pub use allocation::{Allocation, AllocationScheme, OccupancyStats};
pub use coaccess::{partition_coaccess, CoAccessBuilder, CoAccessGraph};
pub use greedy::greedy_by_size;
pub use heat::{disk_heats, greedy_by_heat, heat_imbalance};
pub use policy::{allocate, AllocationPolicy};
pub use profile::{profile_response_ms, DiskAccessProfile};
pub use round_robin::round_robin;
