//! Heat-based allocation (extension).
//!
//! The paper's two schemes balance *occupancy*. Under skewed **access**
//! patterns (heavy query traffic on a few fragments) a size-balanced
//! placement can still produce hot disks. This extension — in the spirit
//! of the disk-heat balancing line of work from the same group — places
//! fragments by descending *heat* (expected device time per unit of
//! workload) onto the currently coolest disk, with occupancy as the
//! tie-breaker so space stays reasonable too.
//!
//! Heat values come from the cost model: a fragment's heat is the sum over
//! query classes of `share × P(class accesses the fragment) ×
//! per-fragment device time` — computable from the same matching
//! statistics the prediction layer already derives.

use crate::{Allocation, AllocationScheme};

/// Places fragments by descending heat onto the disk with the least
/// accumulated heat (ties: least occupancy, then lowest disk id).
///
/// `heats[f]` is fragment `f`'s expected device time per workload unit;
/// `sizes[f]` its bytes (kept for occupancy statistics and tie-breaking).
///
/// # Panics
///
/// Panics if the slices differ in length, a heat is negative or NaN, or
/// `num_disks == 0`.
pub fn greedy_by_heat(heats: &[f64], sizes: Vec<u64>, num_disks: u32) -> Allocation {
    assert!(num_disks > 0, "greedy_by_heat needs at least one disk");
    assert_eq!(heats.len(), sizes.len(), "one heat per fragment");
    assert!(
        heats.iter().all(|h| h.is_finite() && *h >= 0.0),
        "heats must be finite and non-negative"
    );
    let mut order: Vec<usize> = (0..heats.len()).collect();
    order.sort_by(|&a, &b| {
        heats[b]
            .total_cmp(&heats[a])
            .then(sizes[b].cmp(&sizes[a]))
            .then(a.cmp(&b))
    });

    let mut disk_heat = vec![0.0f64; num_disks as usize];
    let mut disk_bytes = vec![0u64; num_disks as usize];
    let mut disk_of = vec![0u32; heats.len()];
    for f in order {
        let mut best = 0usize;
        for d in 1..disk_heat.len() {
            let cooler = disk_heat[d] < disk_heat[best]
                || (disk_heat[d] == disk_heat[best] && disk_bytes[d] < disk_bytes[best]);
            if cooler {
                best = d;
            }
        }
        disk_of[f] = best as u32;
        disk_heat[best] += heats[f];
        disk_bytes[best] += sizes[f];
    }
    Allocation::new(AllocationScheme::GreedyHeat, num_disks, disk_of, sizes)
}

/// Heat distribution over disks given a placement.
pub fn disk_heats(allocation: &Allocation, heats: &[f64]) -> Vec<f64> {
    assert_eq!(
        allocation.num_fragments(),
        heats.len(),
        "one heat per fragment"
    );
    let mut out = vec![0.0f64; allocation.num_disks() as usize];
    for (f, &h) in heats.iter().enumerate() {
        out[allocation.disk_of(f) as usize] += h;
    }
    out
}

/// Max/mean heat imbalance of a placement (1.0 = perfectly balanced).
pub fn heat_imbalance(allocation: &Allocation, heats: &[f64]) -> f64 {
    let per_disk = disk_heats(allocation, heats);
    let total: f64 = per_disk.iter().sum();
    if total <= 0.0 {
        return 1.0;
    }
    let mean = total / per_disk.len() as f64;
    per_disk.iter().copied().fold(0.0, f64::max) / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_by_size, round_robin};

    #[test]
    fn places_every_fragment() {
        let heats = [5.0, 1.0, 3.0, 2.0, 4.0];
        let a = greedy_by_heat(&heats, vec![10; 5], 2);
        assert_eq!(a.num_fragments(), 5);
        assert_eq!(a.scheme(), AllocationScheme::GreedyHeat);
        assert_eq!(a.fragment_counts().iter().sum::<u32>(), 5);
    }

    #[test]
    fn balances_heat_better_than_size_greedy() {
        // Equal sizes, very unequal heats: size-greedy is blind to heat.
        let heats: Vec<f64> = (0..32).map(|i| if i < 4 { 100.0 } else { 1.0 }).collect();
        let sizes = vec![1000u64; 32];
        let by_heat = greedy_by_heat(&heats, sizes.clone(), 4);
        let by_size = greedy_by_size(sizes, 4);
        let hi_heat = heat_imbalance(&by_heat, &heats);
        let hi_size = heat_imbalance(&by_size, &heats);
        assert!(
            hi_heat <= hi_size + 1e-12,
            "heat-greedy {hi_heat} should not exceed size-greedy {hi_size}"
        );
        // The four hot fragments land on four distinct disks.
        let hot_disks: std::collections::BTreeSet<u32> =
            (0..4).map(|f| by_heat.disk_of(f)).collect();
        assert_eq!(hot_disks.len(), 4);
    }

    #[test]
    fn beats_round_robin_on_adversarial_heat() {
        // Hot fragments at stride = disk count defeat round-robin.
        let heats: Vec<f64> = (0..32)
            .map(|i| if i % 4 == 0 { 50.0 } else { 1.0 })
            .collect();
        let sizes = vec![100u64; 32];
        let rr = round_robin(sizes.clone(), 4);
        let heat = greedy_by_heat(&heats, sizes, 4);
        assert!(heat_imbalance(&heat, &heats) < heat_imbalance(&rr, &heats));
        // Round-robin concentrates all hot fragments on disk 0.
        assert!(heat_imbalance(&rr, &heats) > 2.0);
    }

    #[test]
    fn heat_accounting() {
        let heats = [3.0, 1.0, 2.0];
        let a = round_robin(vec![1; 3], 2);
        let per_disk = disk_heats(&a, &heats);
        assert_eq!(per_disk, vec![5.0, 1.0]);
        assert!((heat_imbalance(&a, &heats) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_heat_is_balanced_by_definition() {
        let a = round_robin(vec![1; 4], 2);
        assert_eq!(heat_imbalance(&a, &[0.0; 4]), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan_heat() {
        let _ = greedy_by_heat(&[f64::NAN], vec![1], 1);
    }

    #[test]
    fn ties_fall_back_to_occupancy() {
        // All heats equal: placement should balance bytes like size-greedy.
        let heats = [1.0; 6];
        let sizes = vec![100u64, 10, 10, 10, 10, 100];
        let a = greedy_by_heat(&heats, sizes, 2);
        let occ = a.occupancy();
        let spread = occ.iter().max().unwrap() - occ.iter().min().unwrap();
        assert!(spread <= 100, "occupancy spread {spread}");
    }
}
