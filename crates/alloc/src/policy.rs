//! Allocation policy selection.

use crate::{greedy_by_size, round_robin, Allocation};

/// Which allocation scheme to apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocationPolicy {
    /// Always logical round-robin.
    RoundRobin,
    /// Always greedy size-based.
    GreedySize,
    /// Round-robin normally; greedy "under notable data skew" — detected
    /// when the coefficient of variation of fragment sizes exceeds the
    /// threshold.
    ///
    /// # Boundary semantics (pinned)
    ///
    /// The comparison is strict: `size_cv == cv_threshold` *exactly*
    /// stays on round-robin; only `size_cv > cv_threshold` triggers the
    /// greedy counter-measure. Degenerate inputs — an empty size
    /// vector, a single fragment, or all-zero sizes — have no
    /// measurable skew, report a CV of 0, and therefore always go
    /// round-robin (for any non-negative threshold).
    Auto {
        /// Size-CV above which the skew counter-measure kicks in.
        cv_threshold: f64,
    },
    /// Co-access graph partitioning (see [`crate::coaccess`]).
    ///
    /// The planner builds the fragment co-access graph from the
    /// workload mix and calls [`crate::partition_coaccess`]; the seed
    /// perturbs residual tie-breaks deterministically. The sizes-only
    /// [`allocate`] entry point has no co-access information, so under
    /// this policy it degrades to greedy size-based placement — the
    /// same graceful fallback the partitioner itself applies to an
    /// edgeless graph.
    GraphPartition {
        /// Deterministic tie-break seed.
        seed: u64,
    },
}

impl Default for AllocationPolicy {
    /// `Auto` with a 10 % size-variation threshold.
    fn default() -> Self {
        Self::Auto { cv_threshold: 0.1 }
    }
}

/// Coefficient of variation of a size vector (0 for uniform sizes).
///
/// Degenerate inputs are defined, not incidental: an empty vector and
/// an all-zero vector both return 0 (no measurable skew), and a single
/// fragment trivially has zero variance — so `Auto` treats all three
/// as uniform and keeps round-robin.
fn size_cv(sizes: &[u64]) -> f64 {
    if sizes.is_empty() {
        return 0.0;
    }
    let n = sizes.len() as f64;
    let mean = sizes.iter().map(|&s| s as f64).sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = sizes
        .iter()
        .map(|&s| (s as f64 - mean) * (s as f64 - mean))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// Allocates fragments of the given byte sizes over `num_disks` disks
/// under `policy`.
///
/// `GraphPartition` degrades to greedy size-based placement here: this
/// entry point sees only sizes, and without a workload there is no
/// co-access graph to partition (planners with a mix in hand build the
/// graph and call [`crate::partition_coaccess`] instead).
pub fn allocate(sizes: Vec<u64>, num_disks: u32, policy: AllocationPolicy) -> Allocation {
    match policy {
        AllocationPolicy::RoundRobin => round_robin(sizes, num_disks),
        AllocationPolicy::GreedySize | AllocationPolicy::GraphPartition { .. } => {
            greedy_by_size(sizes, num_disks)
        }
        AllocationPolicy::Auto { cv_threshold } => {
            if size_cv(&sizes) > cv_threshold {
                greedy_by_size(sizes, num_disks)
            } else {
                round_robin(sizes, num_disks)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocationScheme;

    #[test]
    fn explicit_policies_are_respected() {
        let a = allocate(vec![1; 8], 4, AllocationPolicy::RoundRobin);
        assert_eq!(a.scheme(), AllocationScheme::RoundRobin);
        let b = allocate(vec![1; 8], 4, AllocationPolicy::GreedySize);
        assert_eq!(b.scheme(), AllocationScheme::GreedySize);
    }

    #[test]
    fn auto_uses_round_robin_for_uniform_sizes() {
        let a = allocate(vec![100; 16], 4, AllocationPolicy::default());
        assert_eq!(a.scheme(), AllocationScheme::RoundRobin);
    }

    #[test]
    fn auto_switches_to_greedy_under_skew() {
        let mut sizes = vec![100u64; 16];
        sizes[0] = 10_000;
        let a = allocate(sizes, 4, AllocationPolicy::default());
        assert_eq!(a.scheme(), AllocationScheme::GreedySize);
    }

    #[test]
    fn auto_threshold_is_tunable() {
        let sizes: Vec<u64> = vec![100, 110, 90, 105, 95, 100, 100, 100];
        let strict = allocate(
            sizes.clone(),
            4,
            AllocationPolicy::Auto { cv_threshold: 0.01 },
        );
        assert_eq!(strict.scheme(), AllocationScheme::GreedySize);
        let lax = allocate(sizes, 4, AllocationPolicy::Auto { cv_threshold: 0.5 });
        assert_eq!(lax.scheme(), AllocationScheme::RoundRobin);
    }

    #[test]
    fn size_cv_basics() {
        assert_eq!(size_cv(&[]), 0.0);
        assert_eq!(size_cv(&[0, 0]), 0.0);
        assert!(size_cv(&[5, 5, 5]) < 1e-12);
        assert!(size_cv(&[1, 100]) > 0.9);
    }

    #[test]
    fn auto_equality_at_threshold_stays_round_robin() {
        // Two fragments 50/150: mean 100, deviation 50 → CV exactly 0.5.
        let sizes = vec![50u64, 150];
        assert_eq!(size_cv(&sizes), 0.5);
        let at = allocate(
            sizes.clone(),
            2,
            AllocationPolicy::Auto { cv_threshold: 0.5 },
        );
        assert_eq!(
            at.scheme(),
            AllocationScheme::RoundRobin,
            "size_cv == cv_threshold must NOT trigger greedy (strict >)"
        );
        // The tiniest threshold below the CV flips to greedy.
        let below = allocate(
            sizes,
            2,
            AllocationPolicy::Auto {
                cv_threshold: 0.5 - 1e-12,
            },
        );
        assert_eq!(below.scheme(), AllocationScheme::GreedySize);
    }

    #[test]
    fn auto_degenerate_inputs_go_round_robin() {
        // Empty, single-fragment, and all-zero inputs have CV 0 and stay
        // round-robin even under a zero threshold (strict comparison).
        for sizes in [Vec::new(), vec![1234u64], vec![0, 0, 0]] {
            let a = allocate(sizes, 4, AllocationPolicy::Auto { cv_threshold: 0.0 });
            assert_eq!(a.scheme(), AllocationScheme::RoundRobin);
        }
        assert_eq!(size_cv(&[1234]), 0.0, "single fragment has zero variance");
    }

    #[test]
    fn graph_policy_without_a_graph_degrades_to_greedy() {
        let mut sizes = vec![100u64; 8];
        sizes[0] = 900;
        let a = allocate(sizes, 4, AllocationPolicy::GraphPartition { seed: 9 });
        assert_eq!(a.scheme(), AllocationScheme::GreedySize);
    }
}
