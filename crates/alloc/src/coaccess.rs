//! Co-access graph partitioning allocation.
//!
//! The paper's allocation schemes (round-robin, greedy-by-size) place
//! fragments independently, which defeats declustering exactly when
//! queries touch *correlated* fragments that land on the same disk:
//! the whole class then serializes on one device. Following the
//! graph-partitioning placement literature ("Distributed Data Placement
//! via Graph Partitioning"), this module models the workload as a
//! fragment co-access graph — nodes are fragments, an edge connects two
//! fragments that some query class reads together, weighted by that
//! class's heat — and derives a placement that *scatters* co-accessed
//! fragments across disks while keeping byte occupancy and access heat
//! balanced.
//!
//! The objective is therefore the complement of the classic min-cut:
//! we minimize the co-access weight that stays *internal* to a disk
//! (equivalently, maximize the cut), because fragments read by the same
//! query want to be on different spindles. The partitioner is the
//! standard multilevel scheme adapted to that objective:
//!
//! 1. **Coarsen** by affinity matching — the heavy-edge-matching rule
//!    applied to the co-residence affinity graph: two fragments have
//!    maximal affinity when *no* query reads them together, so each
//!    round pairs every node with its lightest co-access partner (an
//!    unmatched non-neighbor when one exists). Merged nodes may safely
//!    share a disk, so contraction preserves cut quality.
//! 2. **Initial partition** of the coarsest graph: nodes in
//!    deterministic hot-first order, each onto the disk minimizing
//!    (co-access weight to residents, heat load, byte load), subject to
//!    a byte-capacity slack.
//! 3. **Refine** with Fiduccia–Mattheyses-style passes at every level
//!    while uncoarsening: each pass visits nodes hot-first, computes
//!    the gain of moving to every other disk (internal co-access shed
//!    minus gained), and applies the best balance-preserving move.
//!
//! Every ordering is total (`f64::total_cmp` + index tie-breaks) and
//! residual ties are broken by a splitmix64 hash of the caller's seed,
//! so the same inputs — at any worker count — produce a byte-identical
//! allocation, and different seeds explore different tie-break choices
//! deterministically.

use crate::{greedy_by_size, Allocation, AllocationScheme};

/// Groups larger than this contribute no pairwise edges: a class that
/// scans half the warehouse is placement-insensitive (it hits every
/// disk regardless), and its clique would dominate the edge budget.
const MAX_CLIQUE_GROUP: usize = 512;

/// Byte-occupancy slack over the perfectly balanced mean that a disk
/// may reach before the partitioner refuses to place more bytes on it.
const BALANCE_SLACK: f64 = 0.2;

/// Coarsening stops when a level has at most this many nodes (scaled by
/// the disk count) or a matching round stops shrinking the graph.
const COARSEST_NODES: usize = 64;

/// Maximum refinement passes per level; each pass strictly improves the
/// internal co-access weight or the balance, so this is a backstop.
const MAX_REFINE_PASSES: usize = 8;

/// Weighted fragment co-access graph: one node per fragment (carrying
/// its byte size and access heat), one undirected edge per co-accessed
/// fragment pair (carrying the accumulated joint query-class heat).
#[derive(Debug, Clone)]
pub struct CoAccessGraph {
    sizes: Vec<u64>,
    heats: Vec<f64>,
    /// Adjacency per node, sorted by neighbor id, weights accumulated.
    adj: Vec<Vec<(u32, f64)>>,
    num_edges: usize,
}

impl CoAccessGraph {
    /// Starts building a graph over `sizes.len()` fragments.
    pub fn builder(sizes: Vec<u64>) -> CoAccessBuilder {
        let n = sizes.len();
        CoAccessBuilder {
            sizes,
            heats: vec![0.0; n],
            edges: std::collections::BTreeMap::new(),
        }
    }

    /// Number of fragment nodes.
    pub fn num_fragments(&self) -> usize {
        self.sizes.len()
    }

    /// Number of distinct co-access edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Per-fragment byte sizes.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Per-fragment accumulated access heat.
    pub fn heats(&self) -> &[f64] {
        &self.heats
    }
}

/// Incremental [`CoAccessGraph`] construction from per-class accessed
/// fragment sets.
#[derive(Debug, Clone)]
pub struct CoAccessBuilder {
    sizes: Vec<u64>,
    heats: Vec<f64>,
    edges: std::collections::BTreeMap<(u32, u32), f64>,
}

impl CoAccessBuilder {
    /// Accumulates access heat on one fragment node.
    ///
    /// # Panics
    ///
    /// Panics if the fragment index is out of range or the heat is not
    /// a finite non-negative number.
    pub fn add_heat(&mut self, fragment: u32, heat: f64) {
        assert!(
            heat.is_finite() && heat >= 0.0,
            "fragment heat must be finite and non-negative, got {heat}"
        );
        self.heats[fragment as usize] += heat;
    }

    /// Records one query class's co-accessed fragment group: every pair
    /// in `fragments` gains `weight / (group − 1)` edge weight, so a
    /// node's incident weight from one class stays ~`weight` no matter
    /// how wide the class reads. Groups wider than [`MAX_CLIQUE_GROUP`]
    /// are skipped (scan-everything classes carry no placement signal);
    /// duplicate indices are deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or the weight is not a finite
    /// non-negative number.
    pub fn add_group(&mut self, fragments: &[u32], weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "co-access weight must be finite and non-negative, got {weight}"
        );
        let mut group: Vec<u32> = fragments.to_vec();
        group.sort_unstable();
        group.dedup();
        for &f in &group {
            assert!(
                (f as usize) < self.sizes.len(),
                "fragment {f} out of range ({} fragments)",
                self.sizes.len()
            );
        }
        if group.len() < 2 || group.len() > MAX_CLIQUE_GROUP || weight == 0.0 {
            return;
        }
        let per_pair = weight / (group.len() - 1) as f64;
        for (i, &u) in group.iter().enumerate() {
            for &v in &group[i + 1..] {
                *self.edges.entry((u, v)).or_insert(0.0) += per_pair;
            }
        }
    }

    /// Finalizes the graph.
    pub fn build(self) -> CoAccessGraph {
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); self.sizes.len()];
        // BTreeMap iteration is key-sorted, so adjacency lists come out
        // sorted by neighbor id without a second pass.
        for (&(u, v), &w) in &self.edges {
            adj[u as usize].push((v, w));
            adj[v as usize].push((u, w));
        }
        for list in &mut adj {
            list.sort_unstable_by_key(|a| a.0);
        }
        CoAccessGraph {
            sizes: self.sizes,
            heats: self.heats,
            num_edges: self.edges.len(),
            adj,
        }
    }
}

/// splitmix64 — the deterministic tie-break hash. Same generator the
/// scenario fleet uses; chosen for a full-period avalanche on cheap
/// integer inputs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Residual tie-break key for placing `node` on `disk` under `seed`.
fn tie_key(seed: u64, node: u32, disk: u32) -> u64 {
    splitmix64(seed ^ (u64::from(node) << 32) ^ u64::from(disk))
}

/// One coarsening level: the coarse graph plus the fine→coarse node map.
struct Level {
    sizes: Vec<u64>,
    heats: Vec<f64>,
    adj: Vec<Vec<(u32, f64)>>,
}

/// Partitions the co-access graph across `num_disks` disks, scattering
/// co-accessed fragments while balancing bytes and heat.
///
/// When the graph has no edges there is no co-access signal at all and
/// the partitioner degrades gracefully to [`greedy_by_size`] (the
/// returned allocation reports [`AllocationScheme::GreedySize`]).
/// Otherwise the allocation reports
/// [`AllocationScheme::GraphPartition`].
///
/// Same graph + disks + seed ⇒ byte-identical placement; the seed only
/// perturbs residual tie-breaks.
///
/// # Panics
///
/// Panics if `num_disks` is zero.
pub fn partition_coaccess(graph: &CoAccessGraph, num_disks: u32, seed: u64) -> Allocation {
    assert!(num_disks > 0, "partition_coaccess needs at least one disk");
    if graph.num_edges == 0 {
        return greedy_by_size(graph.sizes.clone(), num_disks);
    }
    let finest = Level {
        sizes: graph.sizes.clone(),
        heats: graph.heats.clone(),
        adj: graph.adj.clone(),
    };

    // Coarsen: affinity-match until the graph is small or stops shrinking.
    let target = COARSEST_NODES.max(num_disks as usize * 4);
    let mut levels: Vec<Level> = vec![finest];
    let mut maps: Vec<Vec<u32>> = Vec::new();
    while levels.last().unwrap().sizes.len() > target {
        let (coarse, map) = coarsen(levels.last().unwrap());
        // A matching round that shrinks by <5 % has hit structural
        // saturation (e.g. a dense clique) — stop rather than loop.
        if coarse.sizes.len() as f64 > levels.last().unwrap().sizes.len() as f64 * 0.95 {
            break;
        }
        levels.push(coarse);
        maps.push(map);
    }

    // Initial partition on the coarsest level, then refine while
    // projecting back down through the matching hierarchy.
    let coarsest = levels.last().unwrap();
    let mut assignment = initial_partition(coarsest, num_disks, seed);
    refine(coarsest, num_disks, seed, &mut assignment);
    for lvl in (0..maps.len()).rev() {
        let fine = &levels[lvl];
        let map = &maps[lvl];
        let mut fine_assignment = vec![0u32; fine.sizes.len()];
        for (f, &c) in map.iter().enumerate() {
            fine_assignment[f] = assignment[c as usize];
        }
        assignment = fine_assignment;
        refine(fine, num_disks, seed, &mut assignment);
    }

    Allocation::new(
        AllocationScheme::GraphPartition,
        num_disks,
        assignment,
        graph.sizes.clone(),
    )
}

/// One round of affinity matching: visit nodes hot-first; pair each
/// unmatched node with its *lightest* co-access partner — the
/// heavy-edge rule on the co-residence affinity graph, where affinity
/// is maximal between fragments no query reads together. An unmatched
/// non-neighbor (affinity ∞) beats every neighbor.
fn coarsen(level: &Level) -> (Level, Vec<u32>) {
    let n = level.sizes.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        level.heats[b as usize]
            .total_cmp(&level.heats[a as usize])
            .then(a.cmp(&b))
    });

    let mut mate: Vec<Option<u32>> = vec![None; n];
    // Cursor into `order` for the next unmatched non-neighbor probe.
    let mut probe = 0usize;
    for &u in &order {
        if mate[u as usize].is_some() {
            continue;
        }
        // Advance the shared probe past matched nodes.
        while probe < n && mate[order[probe] as usize].is_some() {
            probe += 1;
        }
        // Candidate 1: the next unmatched node in hot order that is not
        // u itself and not a neighbor — zero co-access, best affinity.
        let neighbor_of = |v: u32| {
            level.adj[u as usize]
                .binary_search_by(|&(w, _)| w.cmp(&v))
                .is_ok()
        };
        let mut free: Option<u32> = None;
        for &v in order.iter().skip(probe) {
            if v != u && mate[v as usize].is_none() && !neighbor_of(v) {
                free = Some(v);
                break;
            }
        }
        let partner = if let Some(v) = free {
            Some(v)
        } else {
            // Candidate 2: the unmatched neighbor with the least
            // co-access weight (ties: lower id).
            level.adj[u as usize]
                .iter()
                .filter(|&&(v, _)| mate[v as usize].is_none() && v != u)
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                .map(|&(v, _)| v)
        };
        mate[u as usize] = Some(u);
        if let Some(v) = partner {
            mate[u as usize] = Some(v);
            mate[v as usize] = Some(u);
        }
    }

    // Number coarse nodes in fine-index order for determinism.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for f in 0..n {
        if map[f] != u32::MAX {
            continue;
        }
        map[f] = next;
        let m = mate[f].unwrap_or(f as u32) as usize;
        if m != f {
            map[m] = next;
        }
        next += 1;
    }

    let coarse_n = next as usize;
    let mut sizes = vec![0u64; coarse_n];
    let mut heats = vec![0.0f64; coarse_n];
    for (f, &c) in map.iter().enumerate() {
        sizes[c as usize] += level.sizes[f];
        heats[c as usize] += level.heats[f];
    }
    // Merge edges; intra-pair weight disappears (its placement cost is
    // now fixed and common to every assignment).
    let mut edges: std::collections::BTreeMap<(u32, u32), f64> = std::collections::BTreeMap::new();
    for (f, list) in level.adj.iter().enumerate() {
        let cu = map[f];
        for &(v, w) in list {
            if (v as usize) <= f {
                continue; // each undirected edge once
            }
            let cv = map[v as usize];
            if cu == cv {
                continue;
            }
            let key = (cu.min(cv), cu.max(cv));
            *edges.entry(key).or_insert(0.0) += w;
        }
    }
    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); coarse_n];
    for (&(u, v), &w) in &edges {
        adj[u as usize].push((v, w));
        adj[v as usize].push((u, w));
    }
    for list in &mut adj {
        list.sort_unstable_by_key(|a| a.0);
    }
    (Level { sizes, heats, adj }, map)
}

/// Greedy balanced initial partition: nodes hot-first (then big-first),
/// each onto the disk minimizing (co-access to residents, heat load,
/// byte load, seed hash, disk id) among disks within the capacity
/// slack — all disks when none qualifies.
fn initial_partition(level: &Level, num_disks: u32, seed: u64) -> Vec<u32> {
    let n = level.sizes.len();
    let d = num_disks as usize;
    let total: u64 = level.sizes.iter().sum();
    let cap = capacity(total, num_disks);

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        let (a_us, b_us) = (a as usize, b as usize);
        level.heats[b_us]
            .total_cmp(&level.heats[a_us])
            .then(level.sizes[b_us].cmp(&level.sizes[a_us]))
            .then(a.cmp(&b))
    });

    let mut assignment = vec![u32::MAX; n];
    let mut byte_load = vec![0u64; d];
    let mut heat_load = vec![0.0f64; d];
    let mut co_weight = vec![0.0f64; d]; // scratch, reset per node
    for &u in &order {
        let us = u as usize;
        co_weight.iter_mut().for_each(|w| *w = 0.0);
        for &(v, w) in &level.adj[us] {
            let dv = assignment[v as usize];
            if dv != u32::MAX {
                co_weight[dv as usize] += w;
            }
        }
        let fits = |disk: usize| byte_load[disk] + level.sizes[us] <= cap;
        let any_fits = (0..d).any(fits);
        let best = (0..d)
            .filter(|&disk| !any_fits || fits(disk))
            .min_by(|&a, &b| {
                co_weight[a]
                    .total_cmp(&co_weight[b])
                    .then(heat_load[a].total_cmp(&heat_load[b]))
                    .then(byte_load[a].cmp(&byte_load[b]))
                    .then(tie_key(seed, u, a as u32).cmp(&tie_key(seed, u, b as u32)))
                    .then(a.cmp(&b))
            })
            .expect("at least one disk");
        assignment[us] = best as u32;
        byte_load[best] += level.sizes[us];
        heat_load[best] += level.heats[us];
    }
    assignment
}

/// FM-style refinement: bounded passes of best-gain single-node moves.
/// A move is applied when it sheds internal co-access weight, or sheds
/// none but strictly improves byte balance; capacity slack is enforced
/// except for moves that reduce the donor disk's overflow.
fn refine(level: &Level, num_disks: u32, seed: u64, assignment: &mut [u32]) {
    let n = level.sizes.len();
    let d = num_disks as usize;
    if d < 2 || n == 0 {
        return;
    }
    let total: u64 = level.sizes.iter().sum();
    let cap = capacity(total, num_disks);

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        level.heats[b as usize]
            .total_cmp(&level.heats[a as usize])
            .then(a.cmp(&b))
    });

    let mut byte_load = vec![0u64; d];
    let mut heat_load = vec![0.0f64; d];
    for (f, &disk) in assignment.iter().enumerate() {
        byte_load[disk as usize] += level.sizes[f];
        heat_load[disk as usize] += level.heats[f];
    }

    let mut co_weight = vec![0.0f64; d];
    for _ in 0..MAX_REFINE_PASSES {
        let mut moved = false;
        for &u in &order {
            let us = u as usize;
            let from = assignment[us] as usize;
            co_weight.iter_mut().for_each(|w| *w = 0.0);
            for &(v, w) in &level.adj[us] {
                co_weight[assignment[v as usize] as usize] += w;
            }
            let size = level.sizes[us];
            let candidate = (0..d)
                .filter(|&to| to != from)
                .filter(|&to| {
                    // Keep the receiver inside the slack, unless the
                    // donor is the overflowing disk and the move still
                    // leaves the receiver lighter than the donor was.
                    byte_load[to] + size <= cap
                        || (byte_load[from] > cap && byte_load[to] + size < byte_load[from])
                })
                .min_by(|&a, &b| {
                    co_weight[a]
                        .total_cmp(&co_weight[b])
                        .then(heat_load[a].total_cmp(&heat_load[b]))
                        .then(byte_load[a].cmp(&byte_load[b]))
                        .then(tie_key(seed, u, a as u32).cmp(&tie_key(seed, u, b as u32)))
                        .then(a.cmp(&b))
                });
            let Some(to) = candidate else { continue };
            let gain = co_weight[from] - co_weight[to];
            let rebalances = co_weight[from] == co_weight[to]
                && byte_load[to] + size < byte_load[from]
                && heat_load[to] + level.heats[us] < heat_load[from];
            if gain > 0.0 || rebalances {
                assignment[us] = to as u32;
                byte_load[from] -= size;
                byte_load[to] += size;
                heat_load[from] -= level.heats[us];
                heat_load[to] += level.heats[us];
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

/// Per-disk byte capacity: the balanced mean plus [`BALANCE_SLACK`].
fn capacity(total_bytes: u64, num_disks: u32) -> u64 {
    let mean = total_bytes as f64 / f64::from(num_disks);
    (mean * (1.0 + BALANCE_SLACK)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8 fragments on 4 disks; classes read pairs (0,4)…(3,7) with
    /// descending heat. Sizes are rigged so greedy-by-size *and*
    /// round-robin both co-locate every pair.
    fn correlated_graph() -> CoAccessGraph {
        let sizes = vec![130, 120, 110, 100, 70, 80, 90, 100];
        let mut b = CoAccessGraph::builder(sizes);
        let shares = [0.4, 0.3, 0.2, 0.1];
        for (i, &share) in shares.iter().enumerate() {
            let pair = [i as u32, i as u32 + 4];
            b.add_group(&pair, share);
            for &f in &pair {
                b.add_heat(f, share * 10.0);
            }
        }
        b.build()
    }

    #[test]
    fn scatters_correlated_pairs_that_greedy_colocates() {
        let g = correlated_graph();
        // Confirm the fixture is adversarial: greedy and round-robin
        // both put each co-accessed pair on one disk.
        let greedy = greedy_by_size(g.sizes().to_vec(), 4);
        let rr = crate::round_robin(g.sizes().to_vec(), 4);
        for f in 0..4usize {
            assert_eq!(greedy.disk_of(f), greedy.disk_of(f + 4));
            assert_eq!(rr.disk_of(f), rr.disk_of(f + 4));
        }
        let part = partition_coaccess(&g, 4, 0);
        assert_eq!(part.scheme(), AllocationScheme::GraphPartition);
        for f in 0..4usize {
            assert_ne!(
                part.disk_of(f),
                part.disk_of(f + 4),
                "pair ({f},{}) not scattered",
                f + 4
            );
        }
        // Bytes stay inside the slack.
        let stats = part.occupancy_stats();
        assert!(stats.imbalance <= 1.0 + BALANCE_SLACK + 1e-9);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let g = correlated_graph();
        let a = partition_coaccess(&g, 4, 7);
        let b = partition_coaccess(&g, 4, 7);
        assert_eq!(a.placements(), b.placements(), "same seed ⇒ identical");
        // Different seeds may differ, but both must scatter the pairs.
        let c = partition_coaccess(&g, 4, 8);
        for f in 0..4usize {
            assert_ne!(c.disk_of(f), c.disk_of(f + 4));
        }
    }

    #[test]
    fn edgeless_graph_degrades_to_greedy() {
        let sizes = vec![500u64, 10, 10, 10, 10];
        let g = CoAccessGraph::builder(sizes.clone()).build();
        assert_eq!(g.num_edges(), 0);
        let part = partition_coaccess(&g, 2, 0);
        let greedy = greedy_by_size(sizes, 2);
        assert_eq!(part.scheme(), AllocationScheme::GreedySize);
        assert_eq!(part.placements(), greedy.placements());
    }

    #[test]
    fn wide_groups_contribute_no_edges() {
        let n = MAX_CLIQUE_GROUP + 1;
        let mut b = CoAccessGraph::builder(vec![1; n]);
        let all: Vec<u32> = (0..n as u32).collect();
        b.add_group(&all, 5.0);
        assert_eq!(b.build().num_edges(), 0);
    }

    #[test]
    fn multilevel_path_covers_every_fragment_once() {
        // Big enough to force several coarsening levels.
        let n = 1000usize;
        let sizes: Vec<u64> = (0..n as u64).map(|i| 50 + (i * 13) % 100).collect();
        let mut b = CoAccessGraph::builder(sizes);
        for c in 0..50u32 {
            // Each class reads a strided band of 20 fragments.
            let frags: Vec<u32> = (0..20u32).map(|k| (c * 7 + k * 50) % n as u32).collect();
            b.add_group(&frags, 1.0 + f64::from(c % 5));
            for &f in &frags {
                b.add_heat(f, 0.1);
            }
        }
        let g = b.build();
        assert!(g.num_edges() > 0);
        let part = partition_coaccess(&g, 16, 3);
        assert_eq!(part.num_fragments(), n);
        assert_eq!(part.fragment_counts().iter().sum::<u32>() as usize, n);
        assert!(part.placements().iter().all(|&d| d < 16));
        let stats = part.occupancy_stats();
        assert!(
            stats.imbalance <= 1.0 + BALANCE_SLACK + 0.05,
            "imbalance {}",
            stats.imbalance
        );
        // Determinism through the full multilevel path.
        let again = partition_coaccess(&g, 16, 3);
        assert_eq!(part.placements(), again.placements());
    }

    #[test]
    fn empty_and_single_fragment_graphs() {
        let g = CoAccessGraph::builder(Vec::new()).build();
        let part = partition_coaccess(&g, 4, 0);
        assert_eq!(part.num_fragments(), 0);
        let mut b = CoAccessGraph::builder(vec![42]);
        b.add_heat(0, 1.0);
        b.add_group(&[0, 0], 1.0); // self-group: dedups to one node, no edge
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
        let part = partition_coaccess(&g, 4, 0);
        assert_eq!(part.num_fragments(), 1);
    }
}
