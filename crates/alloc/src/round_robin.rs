//! Logical round-robin allocation.

use crate::{Allocation, AllocationScheme};

/// Places fragments on disks round-robin in their logical order — the
/// mixed-radix order of the fragmentation dimensions.
///
/// Round-robin maximally spreads any *contiguous* run of logical fragment
/// indices over distinct disks. Because star queries match contiguous
/// coordinate ranges on the innermost fragmentation dimension, this is the
/// declustering that makes the response-time estimates of the prediction
/// layer achievable.
pub fn round_robin(sizes: Vec<u64>, num_disks: u32) -> Allocation {
    assert!(num_disks > 0, "round_robin needs at least one disk");
    let disk_of = (0..sizes.len())
        .map(|f| (f % num_disks as usize) as u32)
        .collect();
    Allocation::new(AllocationScheme::RoundRobin, num_disks, disk_of, sizes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_over_disks() {
        let a = round_robin(vec![1; 10], 4);
        assert_eq!(a.placements(), &[0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn uniform_sizes_balance_perfectly_when_divisible() {
        let a = round_robin(vec![100; 16], 4);
        assert_eq!(a.occupancy(), vec![400; 4]);
        assert!((a.occupancy_stats().imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contiguous_runs_spread_maximally() {
        let a = round_robin(vec![1; 64], 8);
        // Any 8 consecutive fragments land on 8 distinct disks.
        for start in 0..56 {
            let disks: std::collections::BTreeSet<u32> =
                (start..start + 8).map(|f| a.disk_of(f)).collect();
            assert_eq!(disks.len(), 8);
        }
    }

    #[test]
    fn skewed_sizes_imbalance_round_robin() {
        // One huge fragment lands on disk 0 and nothing rebalances it —
        // the weakness that motivates the greedy scheme.
        let mut sizes = vec![10u64; 8];
        sizes[0] = 1000;
        let a = round_robin(sizes, 4);
        let stats = a.occupancy_stats();
        assert!(stats.imbalance > 2.0);
    }

    #[test]
    fn single_disk_takes_everything() {
        let a = round_robin(vec![5, 5, 5], 1);
        assert_eq!(a.occupancy(), vec![15]);
    }

    #[test]
    fn more_disks_than_fragments_leaves_idle_disks() {
        let a = round_robin(vec![5, 5], 4);
        assert_eq!(a.occupancy(), vec![5, 5, 0, 0]);
        assert_eq!(a.fragment_counts(), vec![1, 1, 0, 0]);
    }
}
