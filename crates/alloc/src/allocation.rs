//! The allocation data structure and occupancy statistics.

/// Which scheme produced an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationScheme {
    /// Logical round-robin over the fragment order.
    RoundRobin,
    /// Greedy size-based placement onto the least occupied disk.
    GreedySize,
    /// Greedy heat-based placement onto the coolest disk (extension).
    GreedyHeat,
    /// Co-access graph partitioning: co-accessed fragments scattered
    /// across disks by the multilevel partitioner (extension, see
    /// [`crate::coaccess`]).
    GraphPartition,
}

/// A placement of every fragment onto a disk.
///
/// Fragment sizes are carried in bytes (fact fragment plus its bitmap
/// fragments — bitmap fragmentation exactly follows the fact table's), so
/// occupancy statistics reflect what actually lands on each device.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    scheme: AllocationScheme,
    num_disks: u32,
    /// `disk_of[f]` = disk of fragment `f`.
    disk_of: Vec<u32>,
    /// `sizes[f]` = bytes of fragment `f`.
    sizes: Vec<u64>,
}

impl Allocation {
    /// Assembles an allocation; used by the scheme implementations.
    ///
    /// # Panics
    ///
    /// Panics if arities mismatch, a disk id is out of range, or
    /// `num_disks == 0`.
    pub fn new(
        scheme: AllocationScheme,
        num_disks: u32,
        disk_of: Vec<u32>,
        sizes: Vec<u64>,
    ) -> Self {
        assert!(num_disks > 0, "allocation needs at least one disk");
        assert_eq!(disk_of.len(), sizes.len(), "one size per fragment");
        assert!(
            disk_of.iter().all(|&d| d < num_disks),
            "disk id out of range"
        );
        Self {
            scheme,
            num_disks,
            disk_of,
            sizes,
        }
    }

    /// The scheme that produced this allocation.
    #[inline]
    pub fn scheme(&self) -> AllocationScheme {
        self.scheme
    }

    /// Number of disks.
    #[inline]
    pub fn num_disks(&self) -> u32 {
        self.num_disks
    }

    /// Number of fragments.
    #[inline]
    pub fn num_fragments(&self) -> usize {
        self.disk_of.len()
    }

    /// Disk of fragment `f`.
    #[inline]
    pub fn disk_of(&self, f: usize) -> u32 {
        self.disk_of[f]
    }

    /// Size in bytes of fragment `f`.
    #[inline]
    pub fn size_of(&self, f: usize) -> u64 {
        self.sizes[f]
    }

    /// The full placement vector.
    #[inline]
    pub fn placements(&self) -> &[u32] {
        &self.disk_of
    }

    /// Bytes resident on each disk.
    pub fn occupancy(&self) -> Vec<u64> {
        let mut per_disk = vec![0u64; self.num_disks as usize];
        for (f, &d) in self.disk_of.iter().enumerate() {
            per_disk[d as usize] += self.sizes[f];
        }
        per_disk
    }

    /// Number of fragments resident on each disk.
    pub fn fragment_counts(&self) -> Vec<u32> {
        let mut per_disk = vec![0u32; self.num_disks as usize];
        for &d in &self.disk_of {
            per_disk[d as usize] += 1;
        }
        per_disk
    }

    /// Occupancy balance statistics.
    pub fn occupancy_stats(&self) -> OccupancyStats {
        OccupancyStats::of(&self.occupancy())
    }
}

/// Balance statistics over per-disk occupancy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyStats {
    /// Bytes on the fullest disk.
    pub max_bytes: u64,
    /// Bytes on the emptiest disk.
    pub min_bytes: u64,
    /// Mean bytes per disk.
    pub mean_bytes: f64,
    /// `max / mean` — 1.0 is perfectly balanced; the allocator's target.
    pub imbalance: f64,
    /// Coefficient of variation of per-disk bytes.
    pub cv: f64,
}

impl OccupancyStats {
    /// Computes the statistics of a per-disk byte vector.
    pub fn of(per_disk: &[u64]) -> Self {
        assert!(!per_disk.is_empty(), "no disks");
        let max_bytes = *per_disk.iter().max().expect("non-empty");
        let min_bytes = *per_disk.iter().min().expect("non-empty");
        let n = per_disk.len() as f64;
        let mean = per_disk.iter().map(|&b| b as f64).sum::<f64>() / n;
        let var = per_disk
            .iter()
            .map(|&b| (b as f64 - mean) * (b as f64 - mean))
            .sum::<f64>()
            / n;
        let (imbalance, cv) = if mean > 0.0 {
            (max_bytes as f64 / mean, var.sqrt() / mean)
        } else {
            (1.0, 0.0)
        };
        Self {
            max_bytes,
            min_bytes,
            mean_bytes: mean,
            imbalance,
            cv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let a = Allocation::new(
            AllocationScheme::RoundRobin,
            2,
            vec![0, 1, 0, 1],
            vec![10, 20, 30, 40],
        );
        assert_eq!(a.num_fragments(), 4);
        assert_eq!(a.num_disks(), 2);
        assert_eq!(a.disk_of(2), 0);
        assert_eq!(a.size_of(3), 40);
        assert_eq!(a.scheme(), AllocationScheme::RoundRobin);
        assert_eq!(a.occupancy(), vec![40, 60]);
        assert_eq!(a.fragment_counts(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "disk id out of range")]
    fn rejects_bad_disk_ids() {
        let _ = Allocation::new(AllocationScheme::RoundRobin, 2, vec![0, 2], vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "one size per fragment")]
    fn rejects_arity_mismatch() {
        let _ = Allocation::new(AllocationScheme::RoundRobin, 2, vec![0], vec![1, 1]);
    }

    #[test]
    fn occupancy_stats_balanced() {
        let s = OccupancyStats::of(&[100, 100, 100, 100]);
        assert_eq!(s.max_bytes, 100);
        assert_eq!(s.min_bytes, 100);
        assert!((s.imbalance - 1.0).abs() < 1e-12);
        assert!(s.cv.abs() < 1e-12);
    }

    #[test]
    fn occupancy_stats_skewed() {
        let s = OccupancyStats::of(&[300, 100, 100, 100]);
        assert!((s.mean_bytes - 150.0).abs() < 1e-9);
        assert!((s.imbalance - 2.0).abs() < 1e-12);
        assert!(s.cv > 0.5);
    }

    #[test]
    fn empty_disks_stats() {
        let s = OccupancyStats::of(&[0, 0]);
        assert_eq!(s.imbalance, 1.0);
        assert_eq!(s.cv, 0.0);
    }
}
