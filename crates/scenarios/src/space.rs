//! The scenario parameter space: coverage axes and numeric bounds.

use std::fmt;

/// Structural shape of a generated star schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemaShape {
    /// Few dimensions with shallow hierarchies (2–3 dims, depth 1–2).
    Narrow,
    /// Many dimensions with moderate hierarchies (4–5 dims, depth 2–3).
    Wide,
    /// Few dimensions with deep hierarchies (2–3 dims, depth 4–5).
    Deep,
}

impl SchemaShape {
    /// All shapes, in grid order.
    pub const ALL: [SchemaShape; 3] = [SchemaShape::Narrow, SchemaShape::Wide, SchemaShape::Deep];

    /// `(min_dims, max_dims, min_depth, max_depth, max_fanout)`.
    pub(crate) fn bounds(self) -> (u64, u64, u64, u64, u64) {
        match self {
            SchemaShape::Narrow => (2, 3, 1, 2, 6),
            SchemaShape::Wide => (4, 5, 2, 3, 4),
            SchemaShape::Deep => (2, 3, 4, 5, 3),
        }
    }

    /// Stable lowercase label (used in scenario labels and reports).
    pub fn label(self) -> &'static str {
        match self {
            SchemaShape::Narrow => "narrow",
            SchemaShape::Wide => "wide",
            SchemaShape::Deep => "deep",
        }
    }
}

/// Data-skew profile applied to the bottom level of the dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkewProfile {
    /// Every dimension uniform.
    Uniform,
    /// Moderate Zipf skew (θ ∈ [0.4, 1.0]) on most dimensions.
    Zipfian,
    /// Steep, shuffled Zipf (θ ∈ [1.4, 2.0]) concentrating mass on a few
    /// dispersed hot members.
    HotSpot,
}

impl SkewProfile {
    /// All profiles, in grid order.
    pub const ALL: [SkewProfile; 3] = [
        SkewProfile::Uniform,
        SkewProfile::Zipfian,
        SkewProfile::HotSpot,
    ];

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            SkewProfile::Uniform => "uniform",
            SkewProfile::Zipfian => "zipfian",
            SkewProfile::HotSpot => "hot_spot",
        }
    }
}

/// Shape of the weighted query mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixShape {
    /// Almost every predicate selects a single member.
    PointHeavy,
    /// Most predicates select member ranges.
    RangeHeavy,
    /// Every class touches the same small set of focus dimensions
    /// (co-accessed fragments).
    Correlated,
    /// Head-heavy geometric weights: a drifted workload whose old
    /// classes linger with fading shares.
    Drifting,
}

impl MixShape {
    /// All shapes, in grid order.
    pub const ALL: [MixShape; 4] = [
        MixShape::PointHeavy,
        MixShape::RangeHeavy,
        MixShape::Correlated,
        MixShape::Drifting,
    ];

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            MixShape::PointHeavy => "point_heavy",
            MixShape::RangeHeavy => "range_heavy",
            MixShape::Correlated => "correlated",
            MixShape::Drifting => "drifting",
        }
    }
}

/// One cell of the coverage grid: the cross product of the three
/// categorical axes. A fleet of `n ≥ ScenarioClass::grid().len()`
/// scenarios covers every class at least once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioClass {
    /// Structural schema shape.
    pub schema: SchemaShape,
    /// Data-skew profile.
    pub skew: SkewProfile,
    /// Query-mix shape.
    pub mix: MixShape,
}

impl ScenarioClass {
    /// The full coverage grid (36 classes), in a stable order.
    pub fn grid() -> Vec<ScenarioClass> {
        let mut out = Vec::with_capacity(36);
        for &schema in &SchemaShape::ALL {
            for &skew in &SkewProfile::ALL {
                for &mix in &MixShape::ALL {
                    out.push(ScenarioClass { schema, skew, mix });
                }
            }
        }
        out
    }

    /// Stable `schema/skew/mix` label, e.g. `deep/hot_spot/range_heavy`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.schema.label(),
            self.skew.label(),
            self.mix.label()
        )
    }
}

impl fmt::Display for ScenarioClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Numeric bounds of the scenario parameter space. The categorical axes
/// ([`ScenarioClass`]) are always fully covered; these knobs bound the
/// concrete draws inside each class.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpace {
    /// Disk counts to draw the system configuration from.
    pub disks: Vec<u32>,
    /// Fact rows are drawn log-uniformly from `[min_fact_rows, max_fact_rows]`.
    pub min_fact_rows: u64,
    /// Upper bound on fact rows.
    pub max_fact_rows: u64,
    /// Query classes per mix, drawn uniformly from this inclusive range.
    pub mix_classes: (usize, usize),
    /// Probability that a scenario also enumerates ranged (MDHF)
    /// candidates via `range_options = 2, 3`.
    pub ranged_probability: f64,
    /// Evaluation workers forced into every scenario (`1` keeps fleet
    /// timings comparable on any host; `0` = auto).
    pub parallelism: usize,
    /// Probability that a scenario runs the co-access graph
    /// partitioning allocation policy (with a drawn seed) instead of
    /// the drawn classic policy. The default `0.0` draws **nothing**
    /// from the stream, keeping historical fleet fingerprints
    /// byte-identical.
    pub graph_probability: f64,
}

impl Default for ScenarioSpace {
    fn default() -> Self {
        Self {
            disks: vec![4, 8, 16, 32, 64],
            min_fact_rows: 100_000,
            max_fact_rows: 20_000_000,
            mix_classes: (4, 8),
            ranged_probability: 0.25,
            parallelism: 1,
            graph_probability: 0.0,
        }
    }
}

impl ScenarioSpace {
    /// Validates the bounds.
    pub fn validate(&self) -> Result<(), String> {
        if self.disks.is_empty() {
            return Err("disks must not be empty".into());
        }
        if self.disks.contains(&0) {
            return Err("disk counts must be positive".into());
        }
        if self.min_fact_rows == 0 || self.min_fact_rows > self.max_fact_rows {
            return Err(format!(
                "fact row bounds must satisfy 1 <= min <= max, got {}..{}",
                self.min_fact_rows, self.max_fact_rows
            ));
        }
        if self.mix_classes.0 == 0 || self.mix_classes.0 > self.mix_classes.1 {
            return Err(format!(
                "mix_classes must satisfy 1 <= min <= max, got {:?}",
                self.mix_classes
            ));
        }
        if !(0.0..=1.0).contains(&self.ranged_probability) {
            return Err(format!(
                "ranged_probability must be in [0, 1], got {}",
                self.ranged_probability
            ));
        }
        if !(0.0..=1.0).contains(&self.graph_probability) {
            return Err(format!(
                "graph_probability must be in [0, 1], got {}",
                self.graph_probability
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_complete_and_stable() {
        let grid = ScenarioClass::grid();
        assert_eq!(grid.len(), 36);
        let labels: std::collections::BTreeSet<String> =
            grid.iter().map(ScenarioClass::label).collect();
        assert_eq!(labels.len(), 36, "labels must be unique");
        assert_eq!(grid, ScenarioClass::grid(), "grid order must be stable");
        assert_eq!(grid[0].label(), "narrow/uniform/point_heavy");
        assert_eq!(grid[35].label(), "deep/hot_spot/drifting");
    }

    #[test]
    fn default_space_validates() {
        ScenarioSpace::default().validate().unwrap();
    }

    #[test]
    fn bad_spaces_are_rejected() {
        let mut s = ScenarioSpace {
            disks: vec![],
            ..Default::default()
        };
        assert!(s.validate().is_err());
        s.disks = vec![0];
        assert!(s.validate().is_err());
        let s = ScenarioSpace {
            min_fact_rows: 10,
            max_fact_rows: 5,
            ..Default::default()
        };
        assert!(s.validate().is_err());
        let s = ScenarioSpace {
            mix_classes: (0, 4),
            ..Default::default()
        };
        assert!(s.validate().is_err());
        let s = ScenarioSpace {
            ranged_probability: 1.5,
            ..Default::default()
        };
        assert!(s.validate().is_err());
        let s = ScenarioSpace {
            graph_probability: -0.1,
            ..Default::default()
        };
        assert!(s.validate().is_err());
    }
}
