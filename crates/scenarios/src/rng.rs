//! Minimal deterministic PRNG for scenario generation.
//!
//! A splitmix64 stream keeps this crate dependency-free and makes every
//! draw a pure function of the seed — the generator's determinism
//! guarantee rests on nothing but this file.

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub(crate) struct Rng {
    state: u64,
}

impl Rng {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x6a09_e667_f3bc_c909,
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from the inclusive range `lo..=hi`.
    pub(crate) fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi >= lo);
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// Uniform draw from `[0, 1)`.
    pub(crate) fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `[lo, hi)`.
    pub(crate) fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    pub(crate) fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Uniform pick from a non-empty slice.
    pub(crate) fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.range(0, options.len() as u64 - 1) as usize]
    }

    /// A deterministic sub-stream: draws on the child do not perturb the
    /// parent, so adding draws to one scenario axis never shifts another.
    pub(crate) fn fork(&mut self, salt: u64) -> Rng {
        Rng::new(self.next_u64() ^ salt.wrapping_mul(0x2545_f491_4f6c_dd1d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn range_stays_inclusive() {
        let mut r = Rng::new(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = r.range(2, 5);
            assert!((2..=5).contains(&v));
            seen_lo |= v == 2;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn unit_in_bounds_and_chance_sane() {
        let mut r = Rng::new(11);
        let mut hits = 0;
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            if r.chance(0.25) {
                hits += 1;
            }
        }
        assert!((150..350).contains(&hits), "25% chance hit {hits}/1000");
    }

    #[test]
    fn forks_do_not_perturb_the_parent() {
        let mut a = Rng::new(9);
        let mut b = Rng::new(9);
        let _ = a.fork(1); // both advance the parent exactly once
        let _ = b.fork(1);
        let mut fork_a = a.fork(2);
        let mut fork_b = b.fork(2);
        assert_eq!(fork_a.next_u64(), fork_b.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
