//! The scenario generator: `(fleet seed, index)` → concrete warehouse.

use warlock::config_file::{render_config, ParsedConfig};
use warlock::{AdvisorConfig, Warlock, WarlockError};
use warlock_alloc::AllocationPolicy;
use warlock_schema::{Dimension, FactTable, StarSchema};
use warlock_skew::DimensionSkew;
use warlock_storage::{Architecture, DiskParams, PageConfig, PrefetchPolicy, SystemConfig};
use warlock_workload::{ClassObservation, DimensionPredicate, QueryClass, QueryMix};

use crate::rng::Rng;
use crate::space::{MixShape, ScenarioClass, ScenarioSpace, SkewProfile};

/// One generated warehouse scenario: a coverage-grid class plus the
/// concrete inputs drawn for it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Index of this scenario within its fleet.
    pub id: u32,
    /// The per-scenario seed every draw derived from (itself derived
    /// from the fleet seed and `id`).
    pub seed: u64,
    /// The coverage-grid cell this scenario exercises.
    pub class: ScenarioClass,
    /// The fully assembled advisory inputs — the same struct the
    /// config-file front end produces.
    pub parsed: ParsedConfig,
    /// Seed of the drift-trajectory sub-stream; `Some` only for
    /// `Drifting`-mix scenarios.
    drift_seed: Option<u64>,
}

/// Batches per drift trajectory.
const DRIFT_BATCHES: usize = 12;

/// Batches over which the blend ramps from the configured mix to the
/// drifted target; the remaining batches hold at the target so the
/// decayed statistics window converges onto it.
const DRIFT_RAMP: usize = 8;

/// Total-variation distance between the configured shares and the
/// trajectory's target mix. Comfortably above the default drift-enter
/// threshold (0.25), and low enough that the residual drift left after
/// an auto re-advise adopts the observed mix mid-ramp (at most
/// `DRIFT_SCORE_DEPTH - drift_enter`) stays below that threshold — the
/// structural guarantee behind "one trajectory, exactly one re-advise".
const DRIFT_SCORE_DEPTH: f64 = 0.38;

impl Scenario {
    /// Stable human-readable label, e.g. `s007-deep/hot_spot/drifting`.
    pub fn label(&self) -> String {
        format!("s{:03}-{}", self.id, self.class)
    }

    /// Renders this scenario as a config file in the format
    /// [`warlock::config_file`] parses — the byte-identity of this
    /// string across runs is the fleet's determinism contract.
    pub fn config_string(&self) -> String {
        render_config(&self.parsed)
    }

    /// Materializes the scenario into an owned advisory session.
    pub fn session(&self) -> Result<Warlock, WarlockError> {
        Warlock::from_parsed(self.parsed.clone())
    }

    /// The seeded drift trajectory of a `Drifting`-mix scenario: a
    /// sequence of observation batches whose traffic starts at the
    /// configured (head-heavy) mix and drifts toward its inversion —
    /// the lingering tail classes take over — ramping over the first
    /// [`DRIFT_RAMP`] batches and then holding, so replaying the
    /// batches through [`Warlock::observe`] crosses the default
    /// drift-enter threshold before the final batch. A pure function
    /// of `(fleet seed, id)`: the same fleet always replays
    /// byte-identical traffic. Non-`Drifting` scenarios have no
    /// trajectory (empty).
    ///
    /// The drift *depth* is normalized: the target sits exactly
    /// [`DRIFT_SCORE_DEPTH`] total-variation away from the configured
    /// shares regardless of class count. Deep enough to cross the
    /// default enter threshold with margin — and shallow enough that
    /// once an auto re-advise adopts the observed mix mid-ramp, the
    /// remaining approach to the target cannot cross it again: one
    /// trajectory fires exactly one re-advise.
    ///
    /// Every class keeps at least one observation per batch, so the
    /// observed class set — and with it the structure fingerprint the
    /// evaluation cache keys unweighted cost rows on — stays stable
    /// across re-advises.
    pub fn drift_trajectory(&self) -> Vec<Vec<ClassObservation>> {
        let Some(seed) = self.drift_seed else {
            return Vec::new();
        };
        let mut rng = Rng::new(seed);
        let configured: Vec<(String, f64)> = self
            .parsed
            .mix
            .classes()
            .iter()
            .map(|w| (w.class.name().to_owned(), w.share))
            .collect();
        // The drifted target points at the inverted head-heavy shape
        // (the faded tail classes become the new head), scaled back so
        // its total-variation distance is exactly DRIFT_SCORE_DEPTH.
        let inverted: Vec<f64> = configured.iter().rev().map(|(_, s)| *s).collect();
        let full: f64 = 0.5
            * configured
                .iter()
                .zip(&inverted)
                .map(|((_, share), inv)| (share - inv).abs())
                .sum::<f64>();
        let depth = if full > 0.0 {
            (DRIFT_SCORE_DEPTH / full).min(1.0)
        } else {
            0.0
        };
        let target: Vec<f64> = configured
            .iter()
            .zip(&inverted)
            .map(|((_, share), inv)| share + depth * (inv - share))
            .collect();
        (0..DRIFT_BATCHES)
            .map(|step| {
                let t = ((step + 1) as f64 / DRIFT_RAMP as f64).min(1.0);
                let total = rng.range(400, 600) as f64;
                configured
                    .iter()
                    .zip(&target)
                    .map(|((name, share), target_share)| {
                        let blended = (1.0 - t) * share + t * target_share;
                        let jitter = rng.f64_range(0.95, 1.05);
                        let count = (blended * jitter * total).round().max(1.0) as u64;
                        let obs = ClassObservation::new(name.clone(), count);
                        if rng.chance(0.5) {
                            obs.with_latency_ms(rng.f64_range(1.0, 20.0))
                        } else {
                            obs
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

/// Deterministic scenario generator over a bounded parameter space.
///
/// Each scenario is a pure function of `(seed, index, space)`: indexes
/// are addressable in any order, and the same seed always reproduces
/// the same fleet byte-for-byte. Index `i` exercises coverage-grid
/// class `i % 36`, so any fleet of ≥ 36 scenarios covers the whole
/// categorical grid.
#[derive(Debug, Clone)]
pub struct ScenarioGenerator {
    seed: u64,
    space: ScenarioSpace,
    grid: Vec<ScenarioClass>,
}

impl ScenarioGenerator {
    /// Creates a generator.
    ///
    /// # Errors
    ///
    /// Returns the validation message when `space` is malformed.
    pub fn new(seed: u64, space: ScenarioSpace) -> Result<Self, String> {
        space.validate()?;
        Ok(Self {
            seed,
            space,
            grid: ScenarioClass::grid(),
        })
    }

    /// The parameter space in effect.
    pub fn space(&self) -> &ScenarioSpace {
        &self.space
    }

    /// Generates scenario `id`.
    pub fn scenario(&self, id: u32) -> Scenario {
        let class = self.grid[id as usize % self.grid.len()];
        // Mix the fleet seed and index through one splitmix step so
        // consecutive ids do not draw correlated streams.
        let seed =
            Rng::new(self.seed ^ u64::from(id).wrapping_mul(0xa076_1d64_78bd_642f)).next_u64();
        let mut rng = Rng::new(seed);

        let schema = gen_schema(&mut rng.fork(1), class, &self.space);
        let skews = gen_skews(&mut rng.fork(2), class.skew, &schema);
        let mix = gen_mix(&mut rng.fork(3), class.mix, &schema, &self.space);
        let system = gen_system(&mut rng.fork(4), &self.space);
        let advisor = gen_advisor(&mut rng.fork(5), &self.space, skews);
        // Drawn last, and only for drifting mixes: nothing reads the
        // parent stream afterwards, so configs generated before the
        // trajectory existed stay byte-identical.
        let drift_seed = (class.mix == MixShape::Drifting)
            .then(|| rng.fork(6))
            .map(|mut r| r.next_u64());

        Scenario {
            id,
            seed,
            class,
            parsed: ParsedConfig {
                schema,
                mix,
                system,
                advisor,
            },
            drift_seed,
        }
    }
}

/// Generates `count` scenarios from `seed` over `space`.
///
/// # Panics
///
/// Panics when `space` fails validation — use [`ScenarioGenerator::new`]
/// for the fallible path.
pub fn generate_fleet(seed: u64, count: usize, space: &ScenarioSpace) -> Vec<Scenario> {
    let generator = ScenarioGenerator::new(seed, space.clone()).expect("valid scenario space");
    (0..count as u32).map(|id| generator.scenario(id)).collect()
}

fn gen_schema(rng: &mut Rng, class: ScenarioClass, space: &ScenarioSpace) -> StarSchema {
    let (min_dims, max_dims, min_depth, max_depth, max_fanout) = class.schema.bounds();
    let num_dims = rng.range(min_dims, max_dims);
    let mut builder = StarSchema::builder();
    for d in 0..num_dims {
        let depth = rng.range(min_depth, max_depth);
        let mut dim = Dimension::builder(format!("d{d}"));
        let mut cardinality = 1u64;
        for l in 0..depth {
            cardinality *= rng.range(2, max_fanout);
            dim = dim.level(format!("l{l}"), cardinality);
        }
        builder = builder.dimension(dim.build().expect("integral fan-outs by construction"));
    }
    // Log-uniform fact volume between the space bounds.
    let ln_lo = (space.min_fact_rows as f64).ln();
    let ln_hi = (space.max_fact_rows as f64).ln();
    let rows = rng.f64_range(ln_lo, ln_hi).exp() as u64;
    let mut fact = FactTable::builder("fact");
    for m in 0..rng.range(1, 4) {
        fact = fact.measure(format!("m{m}"), 8);
    }
    builder
        .fact(
            fact.rows(rows.clamp(space.min_fact_rows, space.max_fact_rows))
                .build(),
        )
        .build()
        .expect("generated schemas are valid by construction")
}

fn gen_skews(rng: &mut Rng, profile: SkewProfile, schema: &StarSchema) -> Vec<DimensionSkew> {
    schema
        .dimensions()
        .iter()
        .map(|_| match profile {
            SkewProfile::Uniform => DimensionSkew::UNIFORM,
            SkewProfile::Zipfian => {
                if rng.chance(0.75) {
                    DimensionSkew::zipf(rng.f64_range(0.4, 1.0))
                } else {
                    DimensionSkew::UNIFORM
                }
            }
            SkewProfile::HotSpot => {
                if rng.chance(0.5) {
                    DimensionSkew::hot_spot(rng.f64_range(1.4, 2.0), rng.next_u64() % 1_000_000)
                } else {
                    DimensionSkew::zipf(rng.f64_range(0.4, 1.0))
                }
            }
        })
        .collect()
}

/// Draws a predicate level and value count for one dimension.
fn gen_predicate(rng: &mut Rng, dim: &Dimension, ranged: bool) -> DimensionPredicate {
    let level = rng.range(0, dim.depth() as u64 - 1) as u16;
    let card = dim.levels()[level as usize].cardinality();
    if ranged && card >= 4 {
        DimensionPredicate::range(level, rng.range(2, (card / 2).max(2)))
    } else {
        DimensionPredicate::point(level)
    }
}

/// Picks `k` distinct dimension ids deterministically.
fn pick_dims(rng: &mut Rng, num_dims: usize, k: usize) -> Vec<u16> {
    let mut ids: Vec<u16> = (0..num_dims as u16).collect();
    // Fisher–Yates on the deterministic stream.
    for i in (1..ids.len()).rev() {
        let j = rng.range(0, i as u64) as usize;
        ids.swap(i, j);
    }
    ids.truncate(k.clamp(1, num_dims));
    ids
}

fn gen_mix(rng: &mut Rng, shape: MixShape, schema: &StarSchema, space: &ScenarioSpace) -> QueryMix {
    let num_dims = schema.num_dimensions();
    let num_classes = rng.range(space.mix_classes.0 as u64, space.mix_classes.1 as u64) as usize;
    // Correlated mixes revolve around a fixed set of focus dimensions.
    let focus = pick_dims(rng, num_dims, 2.min(num_dims));

    let mut builder = QueryMix::builder();
    for i in 0..num_classes {
        let (prefix, range_probability) = match shape {
            MixShape::PointHeavy => ("pq", 0.05),
            MixShape::RangeHeavy => ("rq", 0.8),
            MixShape::Correlated => ("cq", 0.3),
            MixShape::Drifting => ("dq", 0.25),
        };
        let dims: Vec<u16> = match shape {
            MixShape::Correlated => {
                let mut dims = focus.clone();
                if num_dims > dims.len() && rng.chance(0.3) {
                    let extra = rng.range(0, num_dims as u64 - 1) as u16;
                    if !dims.contains(&extra) {
                        dims.push(extra);
                    }
                }
                dims
            }
            _ => {
                let k = rng.range(1, 3.min(num_dims as u64)) as usize;
                pick_dims(rng, num_dims, k)
            }
        };
        let mut class = QueryClass::new(format!("{prefix}{i:02}"));
        for d in dims {
            let dim = &schema.dimensions()[d as usize];
            let ranged = rng.chance(range_probability);
            class = class.with(d, gen_predicate(rng, dim, ranged));
        }
        let weight = match shape {
            // Head-heavy geometric decay: the drifted-away tail lingers
            // with fading shares.
            MixShape::Drifting => 8.0 * 0.6f64.powi(i as i32) + 0.2,
            _ => rng.f64_range(1.0, 10.0),
        };
        builder = builder.class(class, weight);
    }
    let mix = builder.build().expect("generated mixes are non-empty");
    debug_assert!(mix.validate(schema).is_ok());
    mix
}

fn gen_system(rng: &mut Rng, space: &ScenarioSpace) -> SystemConfig {
    let disks = rng.pick(&space.disks);
    let architecture = if rng.chance(0.7) {
        Architecture::SharedEverything {
            processors: rng.range(4, 32) as u32,
        }
    } else {
        Architecture::shared_disk(rng.range(2, 4) as u32, rng.range(2, 8) as u32)
    };
    let prefetch = if rng.chance(0.6) {
        PrefetchPolicy::Auto { max_pages: 256 }
    } else {
        PrefetchPolicy::Fixed(rng.pick(&[8u32, 16, 32, 64]))
    };
    SystemConfig {
        num_disks: disks,
        disk: DiskParams {
            avg_seek_ms: rng.f64_range(3.0, 8.0),
            avg_rotational_ms: rng.f64_range(2.0, 4.0),
            transfer_mb_per_s: rng.f64_range(15.0, 60.0),
            capacity_bytes: 18 * (1u64 << 30),
        },
        page: PageConfig::new(rng.pick(&[4096u32, 8192, 16384])),
        fact_prefetch: prefetch,
        bitmap_prefetch: prefetch,
        architecture,
    }
}

fn gen_advisor(rng: &mut Rng, space: &ScenarioSpace, skews: Vec<DimensionSkew>) -> AdvisorConfig {
    let allocation_policy = match rng.range(0, 3) {
        0 | 1 => AllocationPolicy::default(),
        2 => AllocationPolicy::GreedySize,
        _ => AllocationPolicy::RoundRobin,
    };
    // The graph-policy knob short-circuits before touching the stream:
    // the default `graph_probability = 0.0` draws nothing, so historical
    // fleet fingerprints stay byte-identical.
    let allocation_policy = if space.graph_probability > 0.0 && rng.chance(space.graph_probability)
    {
        AllocationPolicy::GraphPartition {
            seed: rng.next_u64(),
        }
    } else {
        allocation_policy
    };
    AdvisorConfig {
        max_dimensionality: rng.range(3, 4) as usize,
        range_options: if rng.chance(space.ranged_probability) {
            vec![2, 3]
        } else {
            Vec::new()
        },
        allocation_policy,
        skew: if skews.iter().any(|s| !s.is_uniform()) {
            Some(skews)
        } else {
            None
        },
        parallelism: space.parallelism,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SchemaShape;

    #[test]
    fn same_seed_is_byte_identical() {
        let space = ScenarioSpace::default();
        let a = generate_fleet(42, 40, &space);
        let b = generate_fleet(42, 40, &space);
        let join = |fleet: &[Scenario]| {
            fleet
                .iter()
                .map(Scenario::config_string)
                .collect::<Vec<_>>()
                .join("\n---\n")
        };
        assert_eq!(join(&a), join(&b));
        let c = generate_fleet(43, 40, &space);
        assert_ne!(join(&a), join(&c));
    }

    #[test]
    fn indexes_are_addressable_out_of_order() {
        let generator = ScenarioGenerator::new(7, ScenarioSpace::default()).unwrap();
        let direct = generator.scenario(17);
        let fleet = generate_fleet(7, 20, &ScenarioSpace::default());
        assert_eq!(direct.config_string(), fleet[17].config_string());
        assert_eq!(direct.label(), fleet[17].label());
    }

    #[test]
    fn a_full_grid_fleet_covers_every_class() {
        let fleet = generate_fleet(5, 36, &ScenarioSpace::default());
        let classes: std::collections::BTreeSet<String> =
            fleet.iter().map(|s| s.class.label()).collect();
        assert_eq!(classes.len(), 36);
    }

    #[test]
    fn scenarios_materialize_into_valid_sessions() {
        for scenario in generate_fleet(11, 36, &ScenarioSpace::default()) {
            let label = scenario.label();
            scenario
                .parsed
                .mix
                .validate(&scenario.parsed.schema)
                .unwrap_or_else(|e| panic!("{label}: invalid mix: {e}"));
            let session = scenario
                .session()
                .unwrap_or_else(|e| panic!("{label}: session failed: {e}"));
            assert!(session.candidate_space_size() > 0, "{label}: empty space");
        }
    }

    #[test]
    fn graph_probability_one_puts_every_scenario_on_the_graph_policy() {
        let space = ScenarioSpace {
            graph_probability: 1.0,
            ..Default::default()
        };
        for scenario in generate_fleet(13, 8, &space) {
            assert!(
                matches!(
                    scenario.parsed.advisor.allocation_policy,
                    AllocationPolicy::GraphPartition { .. }
                ),
                "{}: drew {:?}",
                scenario.label(),
                scenario.parsed.advisor.allocation_policy
            );
            // The rendered config round-trips the policy (and seed).
            let reparsed = warlock::config_file::parse_config(&scenario.config_string()).unwrap();
            assert_eq!(
                reparsed.advisor.allocation_policy,
                scenario.parsed.advisor.allocation_policy
            );
        }
        // Off means OFF: the knob must not consume any random draws, so
        // an explicit 0.0 reproduces the default space byte for byte.
        let off = ScenarioSpace {
            graph_probability: 0.0,
            ..Default::default()
        };
        let a: Vec<String> = generate_fleet(13, 8, &off)
            .iter()
            .map(Scenario::config_string)
            .collect();
        let b: Vec<String> = generate_fleet(13, 8, &ScenarioSpace::default())
            .iter()
            .map(Scenario::config_string)
            .collect();
        assert_eq!(a, b);
    }

    /// FNV-1a over the canonical debug rendering — a compact pin for
    /// byte-identity regressions.
    fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in text.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    #[test]
    fn drift_trajectories_are_pinned_for_a_fixed_seed() {
        let fleet = generate_fleet(42, 36, &ScenarioSpace::default());
        // Only drifting-mix scenarios carry traffic.
        for s in &fleet {
            let trajectory = s.drift_trajectory();
            if s.class.mix == MixShape::Drifting {
                assert_eq!(trajectory.len(), DRIFT_BATCHES, "{}", s.label());
                for batch in &trajectory {
                    assert_eq!(batch.len(), s.parsed.mix.len(), "{}", s.label());
                    assert!(batch.iter().all(|o| o.count >= 1), "{}", s.label());
                }
            } else {
                assert!(trajectory.is_empty(), "{}", s.label());
            }
        }
        // Same fleet ⇒ byte-identical traffic, pinned: regenerating
        // must reproduce these exact observations forever — the fleet
        // harness's replay metrics depend on it.
        let rendered: String = fleet
            .iter()
            .filter(|s| s.class.mix == MixShape::Drifting)
            .map(|s| format!("{}: {:?}\n", s.label(), s.drift_trajectory()))
            .collect();
        let again: String = generate_fleet(42, 36, &ScenarioSpace::default())
            .iter()
            .filter(|s| s.class.mix == MixShape::Drifting)
            .map(|s| format!("{}: {:?}\n", s.label(), s.drift_trajectory()))
            .collect();
        assert_eq!(rendered, again);
        assert_eq!(
            fnv1a(&rendered),
            11_903_387_315_265_414_035,
            "pinned trajectory bytes changed"
        );
    }

    #[test]
    fn drift_trajectories_cross_the_default_enter_threshold() {
        use warlock_workload::{mix_divergence, StatsWindow};
        let defaults = AdvisorConfig::default();
        for s in generate_fleet(17, 36, &ScenarioSpace::default())
            .iter()
            .filter(|s| s.class.mix == MixShape::Drifting)
        {
            let mut window = StatsWindow::new(defaults.stats_half_life);
            let mut peak = 0.0f64;
            for batch in s.drift_trajectory() {
                window.ingest(&batch);
                peak = peak.max(mix_divergence(&s.parsed.mix, &window));
            }
            assert!(
                peak > defaults.drift_enter,
                "{}: peak divergence {peak} never crossed {}",
                s.label(),
                defaults.drift_enter
            );
        }
    }

    #[test]
    fn config_files_round_trip_through_the_parser() {
        for scenario in generate_fleet(23, 12, &ScenarioSpace::default()) {
            let text = scenario.config_string();
            let reparsed = warlock::config_file::parse_config(&text)
                .unwrap_or_else(|e| panic!("{}: rendered config rejected: {e}", scenario.label()));
            assert_eq!(reparsed.schema, scenario.parsed.schema);
            assert_eq!(reparsed.mix.len(), scenario.parsed.mix.len());
            assert_eq!(reparsed.advisor.skew, scenario.parsed.advisor.skew);
            assert_eq!(
                reparsed.advisor.allocation_policy,
                scenario.parsed.advisor.allocation_policy
            );
            assert_eq!(
                reparsed.advisor.range_options,
                scenario.parsed.advisor.range_options
            );
        }
    }

    #[test]
    fn shapes_respect_their_structural_bounds() {
        for scenario in generate_fleet(3, 72, &ScenarioSpace::default()) {
            let (min_dims, max_dims, min_depth, max_depth, _) = scenario.class.schema.bounds();
            let dims = scenario.parsed.schema.num_dimensions() as u64;
            assert!(
                (min_dims..=max_dims).contains(&dims),
                "{}",
                scenario.label()
            );
            for d in scenario.parsed.schema.dimensions() {
                let depth = d.depth() as u64;
                assert!(
                    (min_depth..=max_depth).contains(&depth),
                    "{}: depth {depth}",
                    scenario.label()
                );
            }
            if scenario.class.schema == SchemaShape::Deep {
                assert!(dims <= 3);
            }
        }
    }

    #[test]
    fn mix_shapes_have_their_signatures() {
        let space = ScenarioSpace::default();
        for scenario in generate_fleet(9, 72, &space) {
            let mix = &scenario.parsed.mix;
            match scenario.class.mix {
                MixShape::Correlated => {
                    // Every class shares the focus dimensions, so the
                    // intersection of referenced dims is non-trivial.
                    let num_dims = scenario.parsed.schema.num_dimensions();
                    let mut shared: std::collections::BTreeSet<u16> = mix.classes()[0]
                        .class
                        .referenced_dimensions()
                        .map(|d| d.0)
                        .collect();
                    for w in &mix.classes()[1..] {
                        let dims: std::collections::BTreeSet<u16> =
                            w.class.referenced_dimensions().map(|d| d.0).collect();
                        shared = shared.intersection(&dims).copied().collect();
                    }
                    assert!(
                        shared.len() >= 2.min(num_dims),
                        "{}: focus intersection {shared:?}",
                        scenario.label()
                    );
                }
                MixShape::Drifting => {
                    // Weights strictly decay head → tail.
                    let shares: Vec<f64> = mix.classes().iter().map(|w| w.share).collect();
                    for pair in shares.windows(2) {
                        assert!(pair[0] > pair[1], "{}: not decaying", scenario.label());
                    }
                }
                MixShape::PointHeavy | MixShape::RangeHeavy => {}
            }
        }
        // Point-heavy mixes carry almost no ranges; range-heavy plenty —
        // checked over the aggregate, not per scenario.
        let count_ranges = |shape: MixShape| {
            let mut point = 0usize;
            let mut range = 0usize;
            for s in generate_fleet(9, 144, &space)
                .into_iter()
                .filter(|s| s.class.mix == shape)
            {
                for w in s.parsed.mix.classes() {
                    for p in w.class.predicates().values() {
                        if p.values > 1 {
                            range += 1;
                        } else {
                            point += 1;
                        }
                    }
                }
            }
            (point, range)
        };
        let (p_point, p_range) = count_ranges(MixShape::PointHeavy);
        let (r_point, r_range) = count_ranges(MixShape::RangeHeavy);
        assert!(p_range * 5 < p_point, "point-heavy: {p_point}p/{p_range}r");
        assert!(r_range > r_point / 2, "range-heavy: {r_point}p/{r_range}r");
    }
}
