//! Seeded, parameterized warehouse scenario generation.
//!
//! Coverage from a single fixture family is not enough to judge the
//! advisor's architecture: the DWEB line of benchmarking work argues
//! that conclusions about warehouse physical design need *generated*
//! scenario populations spanning schema shapes, data skew and query-mix
//! shapes. This crate produces such populations deterministically:
//!
//! * [`ScenarioClass`] — the coverage grid: schema shape × skew profile
//!   × mix shape (36 classes);
//! * [`ScenarioSpace`] — numeric bounds of the parameter space (disk
//!   counts, fact volumes, classes per mix, ranged enumeration odds);
//! * [`ScenarioGenerator`] — a pure function from `(fleet seed, index)`
//!   to a [`Scenario`]: same seed ⇒ byte-identical scenario set, any
//!   index addressable without generating its predecessors.
//!
//! Every scenario materializes as a full [`ParsedConfig`] — the same
//! struct the config-file front end produces — so it can be driven
//! through [`Warlock::from_parsed`], rendered to a config file with
//! [`warlock::config_file::render_config`] and re-read through the
//! `from_config_path` entry point unchanged.
//!
//! ```
//! use warlock_scenarios::{generate_fleet, ScenarioSpace};
//!
//! let fleet = generate_fleet(42, 8, &ScenarioSpace::default());
//! assert_eq!(fleet.len(), 8);
//! for scenario in &fleet {
//!     let session = scenario.session().expect("generated scenarios are valid");
//!     assert!(session.candidate_space_size() > 0);
//! }
//! ```

#![warn(missing_docs)]

mod generate;
mod rng;
mod space;

pub use generate::{generate_fleet, Scenario, ScenarioGenerator};
pub use space::{MixShape, ScenarioClass, ScenarioSpace, SchemaShape, SkewProfile};
