//! Property tests for the scenario generator: seed determinism across
//! the parameter grid, and every generated scenario materializing into
//! a session that completes a full rank without error.

use proptest::prelude::*;

use warlock_scenarios::{generate_fleet, ScenarioGenerator, ScenarioSpace};

/// A sampled grid of scenario spaces: the knobs a caller is most likely
/// to turn, kept small enough to rank quickly.
fn arb_space() -> impl Strategy<Value = ScenarioSpace> {
    (
        proptest::sample::select(vec![vec![4u32, 8], vec![16u32], vec![8u32, 32, 64]]),
        proptest::sample::select(vec![(100_000u64, 500_000u64), (1_000_000, 20_000_000)]),
        proptest::sample::select(vec![(2usize, 4usize), (4, 8)]),
        proptest::sample::select(vec![0.0f64, 0.25, 1.0]),
    )
        .prop_map(
            |(disks, (min_rows, max_rows), mix_classes, ranged)| ScenarioSpace {
                disks,
                min_fact_rows: min_rows,
                max_fact_rows: max_rows,
                mix_classes,
                ranged_probability: ranged,
                parallelism: 1,
                graph_probability: 0.0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed ⇒ byte-identical scenario set, for any seed and any
    /// point of the sampled space grid.
    #[test]
    fn generator_is_seed_deterministic(
        seed in any::<u64>(),
        space in arb_space(),
    ) {
        let render = |fleet: &[warlock_scenarios::Scenario]| -> String {
            fleet
                .iter()
                .map(|s| format!("# {}\n{}", s.label(), s.config_string()))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = generate_fleet(seed, 12, &space);
        let b = generate_fleet(seed, 12, &space);
        prop_assert_eq!(render(&a), render(&b));
        // A different seed must not reproduce the same set.
        let c = generate_fleet(seed.wrapping_add(1), 12, &space);
        prop_assert_ne!(render(&a), render(&c));
    }

    /// Every generated scenario validates and completes a rank without
    /// error, across seeds and the sampled space grid.
    #[test]
    fn every_scenario_ranks_without_error(
        seed in any::<u64>(),
        space in arb_space(),
        id in 0u32..144,
    ) {
        let generator = ScenarioGenerator::new(seed, space).unwrap();
        let scenario = generator.scenario(id);
        let label = scenario.label();
        prop_assert!(
            scenario.parsed.mix.validate(&scenario.parsed.schema).is_ok(),
            "{}: mix does not validate", label
        );
        let session = scenario.session().map_err(|e| {
            proptest::TestCaseError::fail(format!("{label}: session: {e}"))
        })?;
        let ranking = session.rank().map_err(|e| {
            proptest::TestCaseError::fail(format!("{label}: rank: {e}"))
        })?;
        prop_assert!(!ranking.ranked.is_empty(), "{}: empty ranking", label);
        prop_assert!(session.candidate_space_size() > 0);
    }
}
