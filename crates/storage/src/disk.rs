//! Mechanical disk parameters and I/O service-time primitives.

/// Characteristics of one disk device.
///
/// The analytical cost model (Stöhr, BTW 2001, reconstructed here) treats a
/// physical I/O as one positioning phase (average seek plus average
/// rotational delay) followed by the transfer of one *prefetch granule* of
/// contiguous pages. Larger granules amortize positioning over more pages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskParams {
    /// Average seek time in milliseconds.
    pub avg_seek_ms: f64,
    /// Average rotational delay in milliseconds (half a revolution).
    pub avg_rotational_ms: f64,
    /// Sustained transfer rate in megabytes per second (1 MB = 2^20 bytes).
    pub transfer_mb_per_s: f64,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
}

impl DiskParams {
    /// A circa-2001 server disk, contemporary with the paper: 5 ms average
    /// seek, 10 000 rpm (3 ms average rotational delay), 20 MB/s sustained
    /// transfer, 18 GB capacity.
    pub fn ca_2001() -> Self {
        Self {
            avg_seek_ms: 5.0,
            avg_rotational_ms: 3.0,
            transfer_mb_per_s: 20.0,
            capacity_bytes: 18 * (1 << 30),
        }
    }

    /// A modern enterprise HDD: 4 ms seek, 7200 rpm (4.17 ms rotational),
    /// 250 MB/s transfer, 16 TB capacity. Useful for what-if studies.
    pub fn modern_hdd() -> Self {
        Self {
            avg_seek_ms: 4.0,
            avg_rotational_ms: 4.17,
            transfer_mb_per_s: 250.0,
            capacity_bytes: 16 * (1u64 << 40),
        }
    }

    /// Positioning time of one physical I/O (seek + rotational delay).
    #[inline]
    pub fn positioning_ms(&self) -> f64 {
        self.avg_seek_ms + self.avg_rotational_ms
    }

    /// Transfer time for one page of `page_bytes` bytes, in milliseconds.
    #[inline]
    pub fn page_transfer_ms(&self, page_bytes: u64) -> f64 {
        let bytes_per_ms = self.transfer_mb_per_s * 1024.0 * 1024.0 / 1000.0;
        page_bytes as f64 / bytes_per_ms
    }

    /// Service time of reading `pages` logically contiguous pages with
    /// prefetch granule `prefetch` (pages per physical I/O).
    ///
    /// `ceil(pages / prefetch)` positioning phases plus the full transfer:
    /// the model assumes a new seek per granule (other activity intervenes
    /// between granules on a shared device) but contiguous transfer within
    /// one granule.
    pub fn sequential_ms(&self, pages: u64, prefetch: u32, page_bytes: u64) -> f64 {
        if pages == 0 {
            return 0.0;
        }
        let prefetch = u64::from(prefetch.max(1));
        let ios = pages.div_ceil(prefetch);
        ios as f64 * self.positioning_ms() + pages as f64 * self.page_transfer_ms(page_bytes)
    }

    /// Number of physical I/Os for `pages` pages at granule `prefetch`.
    #[inline]
    pub fn sequential_ios(&self, pages: u64, prefetch: u32) -> u64 {
        pages.div_ceil(u64::from(prefetch.max(1)))
    }

    /// Service time of `count` independent random single-page reads.
    pub fn random_ms(&self, count: u64, page_bytes: u64) -> f64 {
        count as f64 * (self.positioning_ms() + self.page_transfer_ms(page_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} !~ {b}");
    }

    #[test]
    fn positioning_is_seek_plus_rotation() {
        let d = DiskParams::ca_2001();
        assert_close(d.positioning_ms(), 8.0, 1e-12);
    }

    #[test]
    fn page_transfer_scales_with_rate() {
        let d = DiskParams::ca_2001();
        // 20 MB/s => 20 * 1048576 / 1000 bytes per ms = 20971.52
        let t8k = d.page_transfer_ms(8192);
        assert_close(t8k, 8192.0 / 20971.52, 1e-9);
        let fast = DiskParams {
            transfer_mb_per_s: 40.0,
            ..d
        };
        assert_close(fast.page_transfer_ms(8192), t8k / 2.0, 1e-9);
    }

    #[test]
    fn sequential_amortizes_positioning() {
        let d = DiskParams::ca_2001();
        let slow = d.sequential_ms(64, 1, 8192);
        let fast = d.sequential_ms(64, 16, 8192);
        // Transfer part is identical; positioning drops from 64 to 4 I/Os.
        let t = 64.0 * d.page_transfer_ms(8192);
        assert_close(slow, 64.0 * 8.0 + t, 1e-9);
        assert_close(fast, 4.0 * 8.0 + t, 1e-9);
    }

    #[test]
    fn sequential_handles_edge_cases() {
        let d = DiskParams::ca_2001();
        assert_eq!(d.sequential_ms(0, 8, 8192), 0.0);
        // Zero prefetch is treated as one.
        assert_close(
            d.sequential_ms(3, 0, 8192),
            d.sequential_ms(3, 1, 8192),
            1e-12,
        );
        // Partial final granule still counts one I/O.
        assert_eq!(d.sequential_ios(17, 8), 3);
        assert_eq!(d.sequential_ios(16, 8), 2);
        assert_eq!(d.sequential_ios(1, 8), 1);
    }

    #[test]
    fn random_reads_pay_positioning_each() {
        let d = DiskParams::ca_2001();
        let one = d.random_ms(1, 8192);
        assert_close(d.random_ms(10, 8192), 10.0 * one, 1e-9);
        assert!(one > d.positioning_ms());
    }

    #[test]
    fn presets_are_sane() {
        let old = DiskParams::ca_2001();
        let new = DiskParams::modern_hdd();
        assert!(new.transfer_mb_per_s > old.transfer_mb_per_s);
        assert!(new.capacity_bytes > old.capacity_bytes);
        assert!(old.positioning_ms() > 0.0);
    }
}
