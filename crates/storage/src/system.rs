//! Parallel database architecture and overall system configuration.

use crate::{DiskParams, PageConfig};

/// The parallel database architecture WARLOCK targets.
///
/// Both architectures give every processing unit access to every disk
/// ("Shared Everything or Shared Disk", §1); they differ in how processing
/// capacity is organized and in the coordination overhead of cross-node
/// work in the Shared Disk case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Architecture {
    /// One multiprocessor node; all `processors` share memory and disks.
    SharedEverything {
        /// Number of processors available for parallel query work.
        processors: u32,
    },
    /// Several loosely coupled nodes, each with access to all disks.
    SharedDisk {
        /// Number of nodes.
        nodes: u32,
        /// Processors per node.
        processors_per_node: u32,
        /// Multiplicative response-time overhead for cross-node
        /// coordination (buffer coherency, global locking). 1.0 = none;
        /// the default configuration uses 1.05.
        coordination_overhead: f64,
    },
}

impl Architecture {
    /// Total processors available for intra-query parallelism.
    pub fn total_processors(&self) -> u32 {
        match *self {
            Self::SharedEverything { processors } => processors.max(1),
            Self::SharedDisk {
                nodes,
                processors_per_node,
                ..
            } => (nodes * processors_per_node).max(1),
        }
    }

    /// Response-time multiplier for coordination overhead.
    pub fn overhead_factor(&self) -> f64 {
        match *self {
            Self::SharedEverything { .. } => 1.0,
            Self::SharedDisk {
                coordination_overhead,
                ..
            } => coordination_overhead.max(1.0),
        }
    }

    /// A Shared Disk architecture with the default 5 % coordination
    /// overhead.
    pub fn shared_disk(nodes: u32, processors_per_node: u32) -> Self {
        Self::SharedDisk {
            nodes,
            processors_per_node,
            coordination_overhead: 1.05,
        }
    }
}

/// Complete system description: the disk complement, page configuration,
/// prefetch policy and architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Number of identical disks data is declustered over.
    pub num_disks: u32,
    /// Per-disk parameters.
    pub disk: DiskParams,
    /// Page configuration.
    pub page: PageConfig,
    /// Prefetch policy for fact-table fragments.
    pub fact_prefetch: PrefetchPolicy,
    /// Prefetch policy for bitmap fragments. Bitmap fragments are much
    /// smaller than fact fragments, so the paper lets the tool pick
    /// distinct optimal granules for the two.
    pub bitmap_prefetch: PrefetchPolicy,
    /// Processing architecture.
    pub architecture: Architecture,
}

impl SystemConfig {
    /// A sensible paper-era default: 16 disks of the 2001 preset, 8 KiB
    /// pages, automatic prefetching, Shared Everything with 16 processors.
    pub fn default_2001(num_disks: u32) -> Self {
        Self {
            num_disks: num_disks.max(1),
            disk: DiskParams::ca_2001(),
            page: PageConfig::default(),
            fact_prefetch: PrefetchPolicy::Auto { max_pages: 256 },
            bitmap_prefetch: PrefetchPolicy::Auto { max_pages: 256 },
            architecture: Architecture::SharedEverything { processors: 16 },
        }
    }

    /// Total usable capacity of the disk complement, in bytes.
    pub fn total_capacity_bytes(&self) -> u64 {
        u64::from(self.num_disks) * self.disk.capacity_bytes
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_disks == 0 {
            return Err("system needs at least one disk".into());
        }
        if self.disk.transfer_mb_per_s <= 0.0 {
            return Err("transfer rate must be positive".into());
        }
        if self.disk.avg_seek_ms < 0.0 || self.disk.avg_rotational_ms < 0.0 {
            return Err("positioning times must be non-negative".into());
        }
        if let PrefetchPolicy::Fixed(p) = self.fact_prefetch {
            if p == 0 {
                return Err("fact prefetch granule must be >= 1 page".into());
            }
        }
        if let PrefetchPolicy::Fixed(p) = self.bitmap_prefetch {
            if p == 0 {
                return Err("bitmap prefetch granule must be >= 1 page".into());
            }
        }
        Ok(())
    }
}

/// Prefetch granule policy.
///
/// The paper: "WARLOCK offers the choice to set a fixed value or to
/// determine itself optimal values for fact tables and bitmaps, which
/// strongly differ with respect to fragment sizes."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// A fixed granule, in pages per physical I/O.
    Fixed(u32),
    /// Let the tool pick the cost-optimal granule per fragmentation, capped
    /// at `max_pages`.
    Auto {
        /// Upper bound on the chosen granule.
        max_pages: u32,
    },
}

impl PrefetchPolicy {
    /// The fixed granule, if this policy is fixed.
    pub fn fixed(&self) -> Option<u32> {
        match *self {
            Self::Fixed(p) => Some(p),
            Self::Auto { .. } => None,
        }
    }

    /// The cap on granules this policy permits.
    pub fn max_pages(&self) -> u32 {
        match *self {
            Self::Fixed(p) => p,
            Self::Auto { max_pages } => max_pages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_counts() {
        assert_eq!(
            Architecture::SharedEverything { processors: 8 }.total_processors(),
            8
        );
        assert_eq!(Architecture::shared_disk(4, 4).total_processors(), 16);
        // Degenerate configs clamp to one processor.
        assert_eq!(
            Architecture::SharedEverything { processors: 0 }.total_processors(),
            1
        );
    }

    #[test]
    fn overhead_factors() {
        assert_eq!(
            Architecture::SharedEverything { processors: 8 }.overhead_factor(),
            1.0
        );
        let sd = Architecture::shared_disk(2, 4);
        assert!((sd.overhead_factor() - 1.05).abs() < 1e-12);
        let sd_low = Architecture::SharedDisk {
            nodes: 2,
            processors_per_node: 4,
            coordination_overhead: 0.5, // nonsense input clamps to 1.0
        };
        assert_eq!(sd_low.overhead_factor(), 1.0);
    }

    #[test]
    fn default_system_is_valid() {
        let s = SystemConfig::default_2001(16);
        assert!(s.validate().is_ok());
        assert_eq!(s.num_disks, 16);
        assert_eq!(s.total_capacity_bytes(), 16 * 18 * (1 << 30));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut s = SystemConfig::default_2001(4);
        s.fact_prefetch = PrefetchPolicy::Fixed(0);
        assert!(s.validate().is_err());
        let mut s = SystemConfig::default_2001(4);
        s.disk.transfer_mb_per_s = 0.0;
        assert!(s.validate().is_err());
        let mut s = SystemConfig::default_2001(4);
        s.disk.avg_seek_ms = -1.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn zero_disks_clamped_by_constructor_rejected_by_validate() {
        let s = SystemConfig::default_2001(0);
        assert_eq!(s.num_disks, 1); // constructor clamps
        let bad = SystemConfig {
            num_disks: 0,
            ..SystemConfig::default_2001(1)
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn prefetch_policy_accessors() {
        assert_eq!(PrefetchPolicy::Fixed(8).fixed(), Some(8));
        assert_eq!(PrefetchPolicy::Auto { max_pages: 64 }.fixed(), None);
        assert_eq!(PrefetchPolicy::Fixed(8).max_pages(), 8);
        assert_eq!(PrefetchPolicy::Auto { max_pages: 64 }.max_pages(), 64);
    }
}
