//! Storage and system model for WARLOCK.
//!
//! The tool's input layer asks the DBA for "a few database and disk
//! parameters … (page size, number of disks and their capacity, average
//! rotational, seek and data transfer times, prefetching granule)". This
//! crate models exactly those inputs:
//!
//! * [`DiskParams`] — mechanical disk characteristics and the derived
//!   service-time primitives (sequential run with prefetching, random page
//!   access),
//! * [`PageConfig`] — page-size arithmetic (rows per page, pages for bytes),
//! * [`PrefetchPolicy`] — fixed prefetch granule or tool-chosen optimum,
//! * [`Architecture`] / [`SystemConfig`] — Shared Everything or Shared Disk
//!   parallel database architecture with its disk complement.
//!
//! All times are in milliseconds (`f64`), all sizes in bytes (`u64`).

//!
//! # Example
//!
//! ```
//! use warlock_storage::DiskParams;
//!
//! let disk = DiskParams::ca_2001();
//! // Prefetching amortizes positioning: 64 pages in one granule cost far
//! // less than 64 single-page reads.
//! let batched = disk.sequential_ms(64, 64, 8192);
//! let single = disk.sequential_ms(64, 1, 8192);
//! assert!(batched < single / 5.0);
//! ```

#![warn(missing_docs)]

mod disk;
mod page;
mod system;

pub use disk::DiskParams;
pub use page::PageConfig;
pub use system::{Architecture, PrefetchPolicy, SystemConfig};
