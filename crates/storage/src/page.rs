//! Page-size arithmetic.

/// Database page configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageConfig {
    /// Page size in bytes. Must be a power of two ≥ 512.
    pub page_bytes: u32,
}

impl PageConfig {
    /// Creates a page configuration, validating the size.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two or is smaller than 512.
    pub fn new(page_bytes: u32) -> Self {
        assert!(
            page_bytes.is_power_of_two() && page_bytes >= 512,
            "page size must be a power of two >= 512, got {page_bytes}"
        );
        Self { page_bytes }
    }

    /// How many whole rows of `row_bytes` bytes fit into one page.
    ///
    /// Rows never span pages (slotted-page assumption); at least one row per
    /// page is assumed, so `row_bytes` larger than the page degrades to one
    /// row per page.
    #[inline]
    pub fn rows_per_page(&self, row_bytes: u32) -> u64 {
        u64::from((self.page_bytes / row_bytes.max(1)).max(1))
    }

    /// Number of pages needed to hold `rows` rows of `row_bytes` bytes.
    #[inline]
    pub fn pages_for_rows(&self, rows: u64, row_bytes: u32) -> u64 {
        if rows == 0 {
            return 0;
        }
        rows.div_ceil(self.rows_per_page(row_bytes))
    }

    /// Number of pages needed to hold `bytes` raw bytes (bit vectors etc.).
    #[inline]
    pub fn pages_for_bytes(&self, bytes: u64) -> u64 {
        bytes.div_ceil(u64::from(self.page_bytes))
    }

    /// Total bytes occupied by `pages` pages.
    #[inline]
    pub fn bytes_for_pages(&self, pages: u64) -> u64 {
        pages * u64::from(self.page_bytes)
    }
}

impl Default for PageConfig {
    /// 8 KiB pages, a common warehouse default.
    fn default() -> Self {
        Self::new(8192)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_per_page_floors() {
        let p = PageConfig::new(8192);
        assert_eq!(p.rows_per_page(100), 81);
        assert_eq!(p.rows_per_page(8192), 1);
        // Oversized rows degrade to one per page rather than zero.
        assert_eq!(p.rows_per_page(10000), 1);
        assert_eq!(p.rows_per_page(0), 8192);
    }

    #[test]
    fn pages_for_rows_ceils() {
        let p = PageConfig::new(8192);
        assert_eq!(p.pages_for_rows(0, 100), 0);
        assert_eq!(p.pages_for_rows(81, 100), 1);
        assert_eq!(p.pages_for_rows(82, 100), 2);
        assert_eq!(p.pages_for_rows(8100, 100), 100);
    }

    #[test]
    fn pages_for_bytes_ceils() {
        let p = PageConfig::new(4096);
        assert_eq!(p.pages_for_bytes(0), 0);
        assert_eq!(p.pages_for_bytes(1), 1);
        assert_eq!(p.pages_for_bytes(4096), 1);
        assert_eq!(p.pages_for_bytes(4097), 2);
        assert_eq!(p.bytes_for_pages(3), 12288);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = PageConfig::new(1000);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_tiny_pages() {
        let _ = PageConfig::new(256);
    }

    #[test]
    fn default_is_8k() {
        assert_eq!(PageConfig::default().page_bytes, 8192);
    }
}
