//! Word-aligned run-length compressed bitmaps (WAH-style).
//!
//! Bitmap join indexes over selective attributes are dominated by long
//! zero runs; word-aligned RLE keeps them compact while still supporting
//! fast merge-based boolean operations. The compressed form is a sequence
//! of [`Run`]s over 64-bit words: *fill* runs of repeated all-zero or
//! all-one words and *literal* single words.

use crate::BitVec;

/// One run of a compressed bitmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Run {
    /// `count` repetitions of an all-zero or all-one word.
    Fill {
        /// The repeated bit value.
        bit: bool,
        /// Number of repeated 64-bit words (≥ 1).
        count: u64,
    },
    /// One verbatim mixed word.
    Literal(u64),
}

/// A word-aligned RLE-compressed bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleBitmap {
    /// Bit length of the uncompressed vector.
    len: usize,
    runs: Vec<Run>,
}

impl RleBitmap {
    /// Compresses an uncompressed vector.
    pub fn compress(v: &BitVec) -> Self {
        let mut runs: Vec<Run> = Vec::new();
        for &word in v.words() {
            let new = match word {
                0 => Run::Fill {
                    bit: false,
                    count: 1,
                },
                u64::MAX => Run::Fill {
                    bit: true,
                    count: 1,
                },
                w => Run::Literal(w),
            };
            match (runs.last_mut(), new) {
                (
                    Some(Run::Fill { bit, count }),
                    Run::Fill {
                        bit: nbit,
                        count: 1,
                    },
                ) if *bit == nbit => *count += 1,
                _ => runs.push(new),
            }
        }
        Self { len: v.len(), runs }
    }

    /// Decompresses back into an uncompressed vector.
    pub fn decompress(&self) -> BitVec {
        let mut words = Vec::with_capacity(self.len.div_ceil(64));
        for run in &self.runs {
            match *run {
                Run::Fill { bit, count } => {
                    let w = if bit { u64::MAX } else { 0 };
                    words.extend(std::iter::repeat_n(w, count as usize));
                }
                Run::Literal(w) => words.push(w),
            }
        }
        BitVec::from_words(self.len, words)
    }

    /// Bit length of the uncompressed form.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The runs.
    #[inline]
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Number of set bits, computed without decompression.
    ///
    /// The tail invariant of [`BitVec`] guarantees bits beyond `len` are
    /// zero in literals; a trailing one-fill is clipped to `len`.
    pub fn count_ones(&self) -> usize {
        let mut ones = 0usize;
        let mut bit_pos = 0usize;
        for run in &self.runs {
            match *run {
                Run::Fill { bit, count } => {
                    let bits = (count as usize) * 64;
                    if bit {
                        let effective = bits.min(self.len - bit_pos);
                        ones += effective;
                    }
                    bit_pos += bits;
                }
                Run::Literal(w) => {
                    ones += w.count_ones() as usize;
                    bit_pos += 64;
                }
            }
        }
        ones
    }

    /// Compressed payload size in bytes: 8 bytes of header (a run header
    /// word) per run. A rough but monotone model of on-disk size.
    pub fn payload_bytes(&self) -> usize {
        self.runs.len() * 8
    }

    /// Merge-based AND of two compressed bitmaps of equal length, without
    /// full decompression.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and(&self, other: &RleBitmap) -> RleBitmap {
        self.merge(other, |a, b| a & b)
    }

    /// Merge-based OR of two compressed bitmaps of equal length.
    pub fn or(&self, other: &RleBitmap) -> RleBitmap {
        self.merge(other, |a, b| a | b)
    }

    fn merge(&self, other: &RleBitmap, op: impl Fn(u64, u64) -> u64) -> RleBitmap {
        assert_eq!(self.len, other.len, "length mismatch in RLE merge");
        let mut out_words: Vec<u64> = Vec::new();
        let mut a = RunCursor::new(&self.runs);
        let mut b = RunCursor::new(&other.runs);
        let total_words = self.len.div_ceil(64);
        for _ in 0..total_words {
            let wa = a.next_word();
            let wb = b.next_word();
            out_words.push(op(wa, wb));
        }
        // Re-compress the merged words.
        RleBitmap::compress(&BitVec::from_words(self.len, out_words))
    }
}

/// Streams the words of a run sequence.
struct RunCursor<'a> {
    runs: &'a [Run],
    run_index: usize,
    within: u64,
}

impl<'a> RunCursor<'a> {
    fn new(runs: &'a [Run]) -> Self {
        Self {
            runs,
            run_index: 0,
            within: 0,
        }
    }

    fn next_word(&mut self) -> u64 {
        let run = self.runs[self.run_index];
        let (word, run_len) = match run {
            Run::Fill { bit, count } => (if bit { u64::MAX } else { 0 }, count),
            Run::Literal(w) => (w, 1),
        };
        self.within += 1;
        if self.within == run_len {
            self.run_index += 1;
            self.within = 0;
        }
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sparse() {
        let v = BitVec::from_indices(1000, [0, 500, 999]);
        let c = RleBitmap::compress(&v);
        assert_eq!(c.decompress(), v);
        assert_eq!(c.count_ones(), 3);
        assert_eq!(c.len(), 1000);
    }

    #[test]
    fn roundtrip_dense() {
        let v = BitVec::ones(777);
        let c = RleBitmap::compress(&v);
        assert_eq!(c.decompress(), v);
        assert_eq!(c.count_ones(), 777);
    }

    #[test]
    fn compression_wins_on_long_runs() {
        let sparse = BitVec::from_indices(64 * 1024, [8, 60000]);
        let c = RleBitmap::compress(&sparse);
        assert!(c.payload_bytes() < sparse.payload_bytes() / 10);
    }

    #[test]
    fn compression_degrades_gracefully_on_random_data() {
        // Alternating bits defeat RLE: every word is a literal.
        let mut v = BitVec::zeros(64 * 100);
        for i in (0..v.len()).step_by(2) {
            v.set(i, true);
        }
        let c = RleBitmap::compress(&v);
        assert_eq!(c.runs().len(), 100);
        assert_eq!(c.decompress(), v);
    }

    #[test]
    fn fill_runs_coalesce() {
        let v = BitVec::zeros(64 * 50);
        let c = RleBitmap::compress(&v);
        assert_eq!(
            c.runs(),
            &[Run::Fill {
                bit: false,
                count: 50
            }]
        );
    }

    #[test]
    fn and_or_match_uncompressed_reference() {
        let a = BitVec::from_indices(300, [0, 1, 64, 65, 128, 290]);
        let b = BitVec::from_indices(300, [1, 65, 100, 290, 299]);
        let ca = RleBitmap::compress(&a);
        let cb = RleBitmap::compress(&b);
        assert_eq!(ca.and(&cb).decompress(), a.and(&b));
        assert_eq!(ca.or(&cb).decompress(), a.or(&b));
    }

    #[test]
    fn and_with_ones_and_zeros() {
        let a = BitVec::from_indices(200, [3, 77, 199]);
        let ones = RleBitmap::compress(&BitVec::ones(200));
        let zeros = RleBitmap::compress(&BitVec::zeros(200));
        let ca = RleBitmap::compress(&a);
        assert_eq!(ca.and(&ones).decompress(), a);
        assert_eq!(ca.and(&zeros).count_ones(), 0);
        assert_eq!(ca.or(&zeros).decompress(), a);
        assert_eq!(ca.or(&ones).count_ones(), 200);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn merge_checks_length() {
        let a = RleBitmap::compress(&BitVec::zeros(64));
        let b = RleBitmap::compress(&BitVec::zeros(128));
        let _ = a.and(&b);
    }

    #[test]
    fn count_ones_clips_trailing_one_fill() {
        // 70 bits of ones: one full word fill + literal tail. Compression
        // masks the tail, but a synthetic all-ones fill must clip at len.
        let v = BitVec::ones(70);
        let c = RleBitmap::compress(&v);
        assert_eq!(c.count_ones(), 70);
    }

    #[test]
    fn empty_bitmap() {
        let v = BitVec::zeros(0);
        let c = RleBitmap::compress(&v);
        assert!(c.is_empty());
        assert_eq!(c.count_ones(), 0);
        assert_eq!(c.decompress(), v);
    }
}
