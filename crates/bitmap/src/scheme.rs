//! Bitmap scheme selection.
//!
//! "WARLOCK determines a bitmap scheme per fragmentation that encompasses
//! standard bitmaps on low-cardinal attributes and hierarchically encoded
//! bitmaps on high-cardinal attributes." (§3.2) — and the analysis layer
//! lets the user "exclude some of the suggested bitmap indices to limit
//! space requirements" (§3.3).
//!
//! The scheme decides, per dimension, which hierarchy levels carry a
//! standard index and whether the dimension carries one hierarchically
//! encoded index serving its high-cardinality levels.

use std::collections::BTreeSet;

use warlock_schema::{DimensionId, LevelId, StarSchema};
use warlock_workload::QueryMix;

use crate::HierarchicalEncoding;

/// How a predicate on one attribute can be evaluated through bitmaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// A standard index on exactly this level; a `k`-value predicate reads
    /// `k` vectors.
    Standard {
        /// Cardinality of the indexed level (number of stored vectors).
        cardinality: u64,
    },
    /// The dimension's hierarchically encoded index; a predicate at this
    /// level reads `slices` prefix slices *per selected value* combination
    /// (the AND evaluates all slices once per fragment).
    Encoded {
        /// Prefix slices required at this level.
        slices: u32,
    },
}

/// The bitmap indexes kept for one dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionScheme {
    /// The dimension.
    pub dimension: DimensionId,
    /// Levels carrying standard indexes, with their cardinalities.
    pub standard_levels: Vec<(LevelId, u64)>,
    /// Total slices of the encoded index, if the dimension has one.
    pub encoded_total_bits: Option<u32>,
}

impl DimensionScheme {
    /// Total stored bit-vectors-per-row: standard cardinalities plus
    /// encoded slices. Multiplying by the row count gives total index bits.
    pub fn vectors_stored(&self) -> u64 {
        let std: u64 = self.standard_levels.iter().map(|&(_, c)| c).sum();
        std + u64::from(self.encoded_total_bits.unwrap_or(0))
    }
}

/// Configuration of scheme selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeConfig {
    /// Levels with cardinality at or below this threshold get standard
    /// indexes; finer levels are served by the encoded index.
    pub standard_max_cardinality: u64,
    /// Only index levels the workload actually references (`true`, the
    /// default) or every level of every dimension (`false`).
    pub index_only_referenced: bool,
}

impl Default for SchemeConfig {
    fn default() -> Self {
        Self {
            standard_max_cardinality: 100,
            index_only_referenced: true,
        }
    }
}

/// The complete bitmap scheme of a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitmapScheme {
    dimensions: Vec<DimensionScheme>,
}

impl BitmapScheme {
    /// Derives the scheme for `schema` under `mix`.
    ///
    /// For every (referenced) level: standard index when the cardinality is
    /// at most [`SchemeConfig::standard_max_cardinality`]; otherwise the
    /// dimension gets one hierarchically encoded index covering all its
    /// levels (built once, reused by every high-cardinality level).
    pub fn derive(schema: &StarSchema, mix: &QueryMix, config: SchemeConfig) -> Self {
        // Collect referenced levels per dimension.
        let mut referenced: Vec<BTreeSet<LevelId>> = vec![BTreeSet::new(); schema.num_dimensions()];
        for (class, _) in mix.iter() {
            for (&dim, pred) in class.predicates() {
                referenced[dim.index()].insert(pred.level);
            }
        }

        let mut dimensions = Vec::with_capacity(schema.num_dimensions());
        for (di, dim) in schema.dimensions().iter().enumerate() {
            let candidate_levels: Vec<LevelId> = if config.index_only_referenced {
                referenced[di].iter().copied().collect()
            } else {
                (0..dim.depth()).map(|l| LevelId(l as u16)).collect()
            };
            let mut standard_levels = Vec::new();
            let mut needs_encoded = false;
            for level in candidate_levels {
                let card = dim.cardinality(level).expect("level from schema");
                if card <= config.standard_max_cardinality {
                    standard_levels.push((level, card));
                } else {
                    needs_encoded = true;
                }
            }
            let encoded_total_bits =
                needs_encoded.then(|| HierarchicalEncoding::for_dimension(dim).total_bits());
            dimensions.push(DimensionScheme {
                dimension: DimensionId(di as u16),
                standard_levels,
                encoded_total_bits,
            });
        }
        Self { dimensions }
    }

    /// Per-dimension schemes, in dimension order.
    #[inline]
    pub fn dimensions(&self) -> &[DimensionScheme] {
        &self.dimensions
    }

    /// How a predicate on `(dimension, level)` can be evaluated, or `None`
    /// when no index covers it (forcing a fragment scan).
    pub fn access_for(
        &self,
        schema: &StarSchema,
        dimension: DimensionId,
        level: LevelId,
    ) -> Option<IndexKind> {
        let ds = &self.dimensions[dimension.index()];
        if let Some(&(_, card)) = ds.standard_levels.iter().find(|&&(l, _)| l == level) {
            return Some(IndexKind::Standard { cardinality: card });
        }
        if ds.encoded_total_bits.is_some() {
            let dim = schema.dimension(dimension).expect("scheme from schema");
            let enc = HierarchicalEncoding::for_dimension(dim);
            return Some(IndexKind::Encoded {
                slices: enc.prefix_bits(level),
            });
        }
        None
    }

    /// Returns a copy with every index of `dimension` dropped — the
    /// interactive "exclude some of the suggested bitmap indices" knob.
    pub fn without_dimension(&self, dimension: DimensionId) -> Self {
        let mut out = self.clone();
        let ds = &mut out.dimensions[dimension.index()];
        ds.standard_levels.clear();
        ds.encoded_total_bits = None;
        out
    }

    /// Total stored vectors-per-row over all dimensions (a scalar space
    /// indicator; bits = this × fact rows).
    pub fn total_vectors_stored(&self) -> u64 {
        self.dimensions
            .iter()
            .map(DimensionScheme::vectors_stored)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_workload::apb1_like_mix;

    fn setup() -> (StarSchema, QueryMix) {
        (
            apb1_like_schema(Apb1Config::default()).unwrap(),
            apb1_like_mix().unwrap(),
        )
    }

    #[test]
    fn derive_splits_by_cardinality() {
        let (schema, mix) = setup();
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        // Product: workload references division(5), line(15), family(75),
        // group(300), class(900), code(9000) — the first three are standard
        // (≤100), the rest force an encoded index.
        let p = &scheme.dimensions()[0];
        let std_levels: Vec<u16> = p.standard_levels.iter().map(|&(l, _)| l.0).collect();
        assert_eq!(std_levels, vec![0, 1, 2]);
        assert!(p.encoded_total_bits.is_some());
        // Channel: card 9 → standard only.
        let c = &scheme.dimensions()[3];
        assert_eq!(c.standard_levels.len(), 1);
        assert!(c.encoded_total_bits.is_none());
    }

    #[test]
    fn access_resolution() {
        let (schema, mix) = setup();
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        // time.month (24) → standard.
        match scheme
            .access_for(&schema, DimensionId(2), LevelId(2))
            .unwrap()
        {
            IndexKind::Standard { cardinality } => assert_eq!(cardinality, 24),
            k => panic!("expected standard, got {k:?}"),
        }
        // product.class (900) → encoded with prefix slices.
        match scheme
            .access_for(&schema, DimensionId(0), LevelId(4))
            .unwrap()
        {
            IndexKind::Encoded { slices } => {
                // product fanouts 5,3,5,4,3,10 → bits 3,2,3,2,2,4; prefix
                // through class = 3+2+3+2+2 = 12.
                assert_eq!(slices, 12);
            }
            k => panic!("expected encoded, got {k:?}"),
        }
    }

    #[test]
    fn unreferenced_levels_uncovered_by_default() {
        let (schema, _) = setup();
        // A mix referencing only time.month.
        let mix = warlock_workload::QueryMix::builder()
            .class(
                warlock_workload::QueryClass::new("only_month")
                    .with(2, warlock_workload::DimensionPredicate::point(2)),
                1.0,
            )
            .build()
            .unwrap();
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        assert!(scheme
            .access_for(&schema, DimensionId(0), LevelId(0))
            .is_none());
        assert!(scheme
            .access_for(&schema, DimensionId(2), LevelId(2))
            .is_some());
        // time.quarter is unreferenced → uncovered even though cheap.
        assert!(scheme
            .access_for(&schema, DimensionId(2), LevelId(1))
            .is_none());
    }

    #[test]
    fn index_all_levels_mode() {
        let (schema, mix) = setup();
        let scheme = BitmapScheme::derive(
            &schema,
            &mix,
            SchemeConfig {
                index_only_referenced: false,
                ..Default::default()
            },
        );
        // Every level resolved.
        for r in schema.all_level_refs() {
            assert!(
                scheme.access_for(&schema, r.dimension, r.level).is_some(),
                "{r} uncovered"
            );
        }
    }

    #[test]
    fn without_dimension_drops_indexes() {
        let (schema, mix) = setup();
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        let reduced = scheme.without_dimension(DimensionId(0));
        assert!(reduced
            .access_for(&schema, DimensionId(0), LevelId(4))
            .is_none());
        assert!(reduced
            .access_for(&schema, DimensionId(2), LevelId(2))
            .is_some());
        assert!(reduced.total_vectors_stored() < scheme.total_vectors_stored());
    }

    #[test]
    fn vectors_stored_accounting() {
        let (schema, mix) = setup();
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        let p = &scheme.dimensions()[0];
        // standard: 5 + 15 + 75 = 95 vectors; encoded: 16 slices.
        assert_eq!(p.vectors_stored(), 95 + 16);
        assert_eq!(
            scheme.total_vectors_stored(),
            scheme
                .dimensions()
                .iter()
                .map(DimensionScheme::vectors_stored)
                .sum::<u64>()
        );
    }
}
