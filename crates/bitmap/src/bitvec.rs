//! Uncompressed fixed-length bit vectors.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-length, heap-allocated bit vector.
///
/// Backed by `u64` words; trailing bits of the last word beyond `len` are
/// kept zero as an invariant so popcounts and comparisons never need
/// masking.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0u64; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = Self {
            len,
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
        };
        v.mask_tail();
        v
    }

    /// Builds a vector of `len` bits with the given positions set.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut v = Self::zeros(len);
        for i in indices {
            v.set(i, true);
        }
        v
    }

    /// Length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words (tail bits beyond `len` are zero).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstructs a vector from raw words, masking the tail.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than `len` requires.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert!(
            words.len() == len.div_ceil(WORD_BITS),
            "word count {} does not match length {len}",
            words.len()
        );
        let mut v = Self { len, words };
        v.mask_tail();
        v
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place AND with `other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in AND");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place OR with `other`.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in OR");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place XOR with `other`.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in XOR");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// In-place AND with the complement of `other` (`self &= !other`).
    pub fn and_not_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in AND-NOT");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place complement.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Returns `self & other` without mutating either.
    pub fn and(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Returns `self | other` without mutating either.
    pub fn or(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Returns the complement.
    pub fn not(&self) -> BitVec {
        let mut out = self.clone();
        out.not_assign();
        out
    }

    /// Iterates over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * WORD_BITS + bit)
            })
        })
    }

    /// Storage footprint of the payload, in bytes (`ceil(len / 8)` as
    /// stored on disk; the in-memory word padding is not counted).
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }

    fn mask_tail(&mut self) {
        let tail_bits = self.len % WORD_BITS;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[len={}, ones={}]", self.len, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
        // Tail invariant: words beyond len are zero.
        assert_eq!(o.words()[2] >> 2, 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(100);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(99, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(99));
        assert!(!v.get(1) && !v.get(65));
        assert_eq!(v.count_ones(), 4);
        v.set(63, false);
        assert!(!v.get(63));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(10);
        let _ = v.get(10);
    }

    #[test]
    fn boolean_algebra() {
        let a = BitVec::from_indices(10, [0, 1, 2, 3]);
        let b = BitVec::from_indices(10, [2, 3, 4, 5]);
        assert_eq!(a.and(&b), BitVec::from_indices(10, [2, 3]));
        assert_eq!(a.or(&b), BitVec::from_indices(10, [0, 1, 2, 3, 4, 5]));
        let mut x = a.clone();
        x.xor_assign(&b);
        assert_eq!(x, BitVec::from_indices(10, [0, 1, 4, 5]));
        let mut y = a.clone();
        y.and_not_assign(&b);
        assert_eq!(y, BitVec::from_indices(10, [0, 1]));
    }

    #[test]
    fn complement_respects_tail() {
        let a = BitVec::from_indices(70, [0, 69]);
        let n = a.not();
        assert_eq!(n.count_ones(), 68);
        assert!(!n.get(0) && !n.get(69) && n.get(1));
        // Double complement is identity.
        assert_eq!(n.not(), a);
    }

    #[test]
    fn iter_ones_ascending() {
        let v = BitVec::from_indices(200, [5, 0, 64, 199, 63]);
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![0, 5, 63, 64, 199]);
    }

    #[test]
    fn from_words_masks_tail() {
        let v = BitVec::from_words(4, vec![u64::MAX]);
        assert_eq!(v.count_ones(), 4);
    }

    #[test]
    #[should_panic(expected = "word count")]
    fn from_words_checks_arity() {
        let _ = BitVec::from_words(65, vec![0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_checks_length() {
        let mut a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        a.and_assign(&b);
    }

    #[test]
    fn payload_bytes() {
        assert_eq!(BitVec::zeros(0).payload_bytes(), 0);
        assert_eq!(BitVec::zeros(1).payload_bytes(), 1);
        assert_eq!(BitVec::zeros(8).payload_bytes(), 1);
        assert_eq!(BitVec::zeros(9).payload_bytes(), 2);
        assert_eq!(BitVec::zeros(8192 * 8).payload_bytes(), 8192);
    }

    #[test]
    fn empty_vector_is_fine() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.iter_ones().count(), 0);
        assert_eq!(v.not().count_ones(), 0);
    }
}
