//! Standard (one-vector-per-value) bitmap indexes.

use crate::BitVec;

/// A standard bitmap index over one attribute of one fragment: one bit
/// vector per attribute value, each as long as the fragment's row count.
///
/// Used for low-cardinality attributes, where the `cardinality × rows` bit
/// cost stays acceptable and single-value predicates read exactly one
/// vector.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardBitmapIndex {
    cardinality: u64,
    rows: usize,
    vectors: Vec<BitVec>,
}

impl StandardBitmapIndex {
    /// Builds the index from a column of value ordinals (`0..cardinality`),
    /// one per fragment row.
    ///
    /// # Panics
    ///
    /// Panics if a value ordinal is out of range or `cardinality == 0`.
    pub fn build(cardinality: u64, column: &[u64]) -> Self {
        assert!(cardinality > 0, "cardinality must be positive");
        let rows = column.len();
        let mut vectors = vec![BitVec::zeros(rows); cardinality as usize];
        for (row, &value) in column.iter().enumerate() {
            assert!(
                value < cardinality,
                "value {value} out of cardinality {cardinality}"
            );
            vectors[value as usize].set(row, true);
        }
        Self {
            cardinality,
            rows,
            vectors,
        }
    }

    /// Attribute cardinality (number of vectors).
    #[inline]
    pub fn cardinality(&self) -> u64 {
        self.cardinality
    }

    /// Fragment row count (vector length).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The indicator vector of one value.
    #[inline]
    pub fn bitmap_for(&self, value: u64) -> &BitVec {
        &self.vectors[value as usize]
    }

    /// Evaluates an IN-list predicate: OR of the selected values' vectors.
    pub fn query(&self, values: &[u64]) -> BitVec {
        let mut out = BitVec::zeros(self.rows);
        for &v in values {
            out.or_assign(self.bitmap_for(v));
        }
        out
    }

    /// Total payload bytes of all vectors (uncompressed on-disk size).
    pub fn payload_bytes(&self) -> usize {
        self.vectors.iter().map(BitVec::payload_bytes).sum()
    }

    /// Number of vectors a `k`-value predicate must read.
    #[inline]
    pub fn vectors_read(&self, k: u64) -> u64 {
        k.min(self.cardinality)
    }

    /// Consistency check: every row is set in exactly one vector.
    pub fn check_partition(&self) -> bool {
        let mut seen = BitVec::zeros(self.rows);
        let mut total = 0usize;
        for v in &self.vectors {
            total += v.count_ones();
            seen.or_assign(v);
        }
        total == self.rows && seen.count_ones() == self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_partitions() {
        let column = vec![0, 1, 2, 1, 0, 2, 2];
        let idx = StandardBitmapIndex::build(3, &column);
        assert_eq!(idx.cardinality(), 3);
        assert_eq!(idx.rows(), 7);
        assert!(idx.check_partition());
        assert_eq!(idx.bitmap_for(0).iter_ones().collect::<Vec<_>>(), [0, 4]);
        assert_eq!(idx.bitmap_for(2).count_ones(), 3);
    }

    #[test]
    fn query_or_combines_values() {
        let column = vec![0, 1, 2, 1, 0, 2, 2];
        let idx = StandardBitmapIndex::build(3, &column);
        let r = idx.query(&[0, 1]);
        assert_eq!(r.iter_ones().collect::<Vec<_>>(), [0, 1, 3, 4]);
        assert_eq!(idx.query(&[]).count_ones(), 0);
        assert_eq!(idx.query(&[0, 1, 2]).count_ones(), 7);
    }

    #[test]
    fn payload_scales_with_cardinality() {
        let column: Vec<u64> = (0..1000).map(|i| i % 4).collect();
        let idx4 = StandardBitmapIndex::build(4, &column);
        let idx8 = StandardBitmapIndex::build(8, &column);
        assert_eq!(idx4.payload_bytes(), 4 * 125);
        assert_eq!(idx8.payload_bytes(), 8 * 125);
    }

    #[test]
    fn vectors_read_clamps() {
        let idx = StandardBitmapIndex::build(4, &[0, 1, 2, 3]);
        assert_eq!(idx.vectors_read(2), 2);
        assert_eq!(idx.vectors_read(9), 4);
    }

    #[test]
    #[should_panic(expected = "out of cardinality")]
    fn rejects_out_of_range_values() {
        let _ = StandardBitmapIndex::build(2, &[0, 1, 2]);
    }

    #[test]
    fn empty_fragment() {
        let idx = StandardBitmapIndex::build(3, &[]);
        assert_eq!(idx.rows(), 0);
        assert!(idx.check_partition());
        assert_eq!(idx.query(&[0, 1, 2]).count_ones(), 0);
    }
}
