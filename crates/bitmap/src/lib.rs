//! Bitmap join-index substrate for WARLOCK.
//!
//! "We support standard bitmaps and encoded bitmaps that work as bitmap
//! join indexes [O'Neil/Graefe] to avoid costly fact table scans. …
//! WARLOCK determines a bitmap scheme per fragmentation that encompasses
//! standard bitmaps on low-cardinal attributes and hierarchically encoded
//! bitmaps on high-cardinal attributes." (paper, §2/§3.2)
//!
//! The crate is a *real* bitmap implementation, not just an estimator:
//!
//! * [`BitVec`] — uncompressed fixed-length bit vectors with the boolean
//!   algebra star queries need,
//! * [`RleBitmap`] — word-aligned run-length compression (WAH-style) with
//!   direct merge-based AND/OR,
//! * [`StandardBitmapIndex`] — one bit vector per attribute value,
//! * [`EncodedBitmapIndex`] / [`HierarchicalEncoding`] — hierarchically
//!   encoded bit-sliced indexes where a predicate at level *l* only reads
//!   the slices of levels coarser or equal to *l*,
//! * [`BitmapScheme`] — the per-fragmentation index selection rule, and
//! * [`estimate`] — the page/byte formulas the analytical cost model uses.
//!
//! Bitmap fragmentation exactly follows the fact-table fragmentation: each
//! fragment carries its own (short) vectors so indicator bits stay aligned
//! with the fragment's rows. The substrate operates per fragment; sizes
//! and page counts reported by [`estimate`] are per fragment too.

//!
//! # Example
//!
//! ```
//! use warlock_bitmap::{StandardBitmapIndex, BitVec};
//!
//! // A fragment with 6 rows over a 3-value attribute.
//! let index = StandardBitmapIndex::build(3, &[0, 1, 2, 1, 0, 2]);
//! let hits: BitVec = index.query(&[0, 2]);
//! assert_eq!(hits.iter_ones().collect::<Vec<_>>(), vec![0, 2, 4, 5]);
//! ```

#![warn(missing_docs)]

mod bitvec;
mod encoded;
pub mod estimate;
mod rle;
mod scheme;
mod selection;
mod standard;

pub use bitvec::BitVec;
pub use encoded::{EncodedBitmapIndex, HierarchicalEncoding};
pub use rle::RleBitmap;
pub use scheme::{BitmapScheme, DimensionScheme, IndexKind, SchemeConfig};
pub use selection::{Conjunct, FragmentIndexes, Selection};
pub use standard::StandardBitmapIndex;
