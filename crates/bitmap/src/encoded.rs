//! Hierarchically encoded (bit-sliced) bitmap indexes.
//!
//! For high-cardinality attributes a standard index needs one vector per
//! value; an *encoded* bitmap index stores only `⌈log₂ c⌉` bit slices.
//! WARLOCK uses a *hierarchical* encoding: the codeword of a bottom-level
//! member is the concatenation of its per-level path components (division,
//! then line-within-division, …). A predicate at hierarchy level *l* then
//! only needs the *prefix* slices of levels coarser or equal to *l* — the
//! index simultaneously serves every level of the dimension.

use warlock_schema::{Dimension, LevelId};

use crate::BitVec;

/// The per-level bit layout of a hierarchically encoded dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchicalEncoding {
    /// Level cardinalities, coarse → fine.
    cards: Vec<u64>,
    /// Fan-out of each level (children per parent; level 0's fan-out is its
    /// cardinality).
    fanouts: Vec<u64>,
    /// Codeword bits contributed by each level's component.
    bits_per_level: Vec<u32>,
}

impl HierarchicalEncoding {
    /// Derives the encoding of a dimension.
    ///
    /// # Panics
    ///
    /// Panics if the total codeword exceeds 64 bits (no realistic dimension
    /// does).
    pub fn for_dimension(dim: &Dimension) -> Self {
        let cards: Vec<u64> = dim.levels().iter().map(|l| l.cardinality()).collect();
        let mut fanouts = Vec::with_capacity(cards.len());
        let mut bits_per_level = Vec::with_capacity(cards.len());
        for (i, &card) in cards.iter().enumerate() {
            let fanout = if i == 0 { card } else { card / cards[i - 1] };
            fanouts.push(fanout);
            let bits = if fanout <= 1 {
                0
            } else {
                64 - u64::leading_zeros(fanout - 1)
            };
            bits_per_level.push(bits);
        }
        let total: u32 = bits_per_level.iter().sum();
        assert!(total <= 64, "codeword of {total} bits exceeds 64");
        Self {
            cards,
            fanouts,
            bits_per_level,
        }
    }

    /// Total codeword bits (= number of slices of a full index).
    pub fn total_bits(&self) -> u32 {
        self.bits_per_level.iter().sum()
    }

    /// Bits contributed by each level, coarse → fine.
    #[inline]
    pub fn bits_per_level(&self) -> &[u32] {
        &self.bits_per_level
    }

    /// Slices needed to evaluate a predicate at `level`: the prefix of the
    /// codeword covering levels `0..=level`.
    pub fn prefix_bits(&self, level: LevelId) -> u32 {
        self.bits_per_level[..=level.index()].iter().sum()
    }

    /// Number of hierarchy levels.
    #[inline]
    pub fn depth(&self) -> usize {
        self.cards.len()
    }

    /// Per-level path components of a member: `member` is an ordinal at
    /// `level`; components are returned for levels `0..=level`.
    pub fn components(&self, level: LevelId, member: u64) -> Vec<u64> {
        assert!(
            member < self.cards[level.index()],
            "member {member} out of level cardinality {}",
            self.cards[level.index()]
        );
        let level_card = self.cards[level.index()];
        (0..=level.index())
            .map(|i| {
                let ancestor = member / (level_card / self.cards[i]);
                if i == 0 {
                    ancestor
                } else {
                    ancestor % self.fanouts[i]
                }
            })
            .collect()
    }

    /// The codeword prefix of a member at `level`: the bit string of its
    /// components, MSB-first per component, packed into a `u64` aligned at
    /// bit 0 = first slice. Returns `(bits_used, value)`.
    pub fn prefix_codeword(&self, level: LevelId, member: u64) -> (u32, u64) {
        let comps = self.components(level, member);
        let mut value = 0u64;
        let mut used = 0u32;
        for (i, comp) in comps.iter().enumerate() {
            let bits = self.bits_per_level[i];
            value = (value << bits) | comp;
            used += bits;
        }
        (used, value)
    }

    /// Bit `position` (0 = first slice) of the full codeword of a
    /// bottom-level member.
    pub fn codeword_bit(&self, bottom_member: u64, position: u32) -> bool {
        let bottom = LevelId((self.depth() - 1) as u16);
        let (used, value) = self.prefix_codeword(bottom, bottom_member);
        debug_assert!(position < used);
        (value >> (used - 1 - position)) & 1 == 1
    }
}

/// A hierarchically encoded bitmap index over one dimension of one
/// fragment: `total_bits` slices, each as long as the fragment's row count.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedBitmapIndex {
    encoding: HierarchicalEncoding,
    rows: usize,
    slices: Vec<BitVec>,
}

impl EncodedBitmapIndex {
    /// Builds the index from a column of bottom-level member ordinals, one
    /// per fragment row.
    pub fn build(dim: &Dimension, column: &[u64]) -> Self {
        let encoding = HierarchicalEncoding::for_dimension(dim);
        let rows = column.len();
        let total = encoding.total_bits();
        let mut slices = vec![BitVec::zeros(rows); total as usize];
        let bottom = LevelId((encoding.depth() - 1) as u16);
        for (row, &member) in column.iter().enumerate() {
            let (used, value) = encoding.prefix_codeword(bottom, member);
            debug_assert_eq!(used, total);
            for p in 0..total {
                if (value >> (total - 1 - p)) & 1 == 1 {
                    slices[p as usize].set(row, true);
                }
            }
        }
        Self {
            encoding,
            rows,
            slices,
        }
    }

    /// The encoding layout.
    #[inline]
    pub fn encoding(&self) -> &HierarchicalEncoding {
        &self.encoding
    }

    /// Fragment row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of slices a predicate at `level` must read.
    #[inline]
    pub fn slices_read(&self, level: LevelId) -> u32 {
        self.encoding.prefix_bits(level)
    }

    /// Evaluates an equality predicate `level = member`: ANDs the prefix
    /// slices against the member's codeword prefix.
    pub fn query_level(&self, level: LevelId, member: u64) -> BitVec {
        let (used, value) = self.encoding.prefix_codeword(level, member);
        let mut out = BitVec::ones(self.rows);
        for p in 0..used {
            let expected = (value >> (used - 1 - p)) & 1 == 1;
            if expected {
                out.and_assign(&self.slices[p as usize]);
            } else {
                out.and_not_assign(&self.slices[p as usize]);
            }
        }
        out
    }

    /// Evaluates an IN-list predicate at `level`.
    pub fn query_level_in(&self, level: LevelId, members: &[u64]) -> BitVec {
        let mut out = BitVec::zeros(self.rows);
        for &m in members {
            out.or_assign(&self.query_level(level, m));
        }
        out
    }

    /// Total payload bytes of all slices (uncompressed on-disk size).
    pub fn payload_bytes(&self) -> usize {
        self.slices.iter().map(BitVec::payload_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StandardBitmapIndex;
    use warlock_schema::Dimension;

    fn product() -> Dimension {
        Dimension::builder("product")
            .level("division", 5)
            .level("line", 15)
            .level("family", 75)
            .build()
            .unwrap()
    }

    #[test]
    fn encoding_layout() {
        let e = HierarchicalEncoding::for_dimension(&product());
        // fanouts 5, 3, 5 → bits 3, 2, 3 = 8 total.
        assert_eq!(e.bits_per_level(), &[3, 2, 3]);
        assert_eq!(e.total_bits(), 8);
        assert_eq!(e.prefix_bits(LevelId(0)), 3);
        assert_eq!(e.prefix_bits(LevelId(1)), 5);
        assert_eq!(e.prefix_bits(LevelId(2)), 8);
    }

    #[test]
    fn encoding_skips_trivial_levels() {
        let d = Dimension::builder("d")
            .level("a", 4)
            .level("b", 4) // would be rejected (non-increasing) — use real one
            .build();
        assert!(d.is_err());
        // Fanout-1 situation cannot arise from the builder, but a single
        // level of cardinality 1 can't either; cardinality 2 gives 1 bit.
        let d = Dimension::builder("d").level("a", 2).build().unwrap();
        let e = HierarchicalEncoding::for_dimension(&d);
        assert_eq!(e.total_bits(), 1);
    }

    #[test]
    fn components_decompose_paths() {
        let e = HierarchicalEncoding::for_dimension(&product());
        // Member 0: all-zero path.
        assert_eq!(e.components(LevelId(2), 0), vec![0, 0, 0]);
        // Member 74 (last family): division 4, line 2 (of 3), family 4 (of 5).
        assert_eq!(e.components(LevelId(2), 74), vec![4, 2, 4]);
        // Mid-level member: line 7 → division 2, line 1.
        assert_eq!(e.components(LevelId(1), 7), vec![2, 1]);
    }

    #[test]
    fn prefix_codeword_is_concatenation() {
        let e = HierarchicalEncoding::for_dimension(&product());
        // division 4, line 2, family 4 → 100 | 10 | 100 = 0b1001_0100.
        let (bits, value) = e.prefix_codeword(LevelId(2), 74);
        assert_eq!(bits, 8);
        assert_eq!(value, 0b1001_0100);
        let (bits, value) = e.prefix_codeword(LevelId(0), 4);
        assert_eq!(bits, 3);
        assert_eq!(value, 0b100);
    }

    #[test]
    fn codeword_bit_extraction() {
        let e = HierarchicalEncoding::for_dimension(&product());
        // Member 74: 0b1001_0100 → positions 0..8.
        let expected = [true, false, false, true, false, true, false, false];
        for (p, &want) in expected.iter().enumerate() {
            assert_eq!(e.codeword_bit(74, p as u32), want, "position {p}");
        }
    }

    fn random_column(n: usize, card: u64, seed: u64) -> Vec<u64> {
        // Small deterministic LCG; avoids a rand dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % card
            })
            .collect()
    }

    #[test]
    fn encoded_matches_standard_at_every_level() {
        let dim = product();
        let column = random_column(5000, 75, 7);
        let encoded = EncodedBitmapIndex::build(&dim, &column);
        for level in 0..3u16 {
            let level_card = dim.levels()[level as usize].cardinality();
            let per = 75 / level_card;
            let ancestor_column: Vec<u64> = column.iter().map(|&m| m / per).collect();
            let standard = StandardBitmapIndex::build(level_card, &ancestor_column);
            for member in 0..level_card {
                let a = encoded.query_level(LevelId(level), member);
                let b = standard.bitmap_for(member);
                assert_eq!(&a, b, "level {level} member {member}");
            }
        }
    }

    #[test]
    fn query_level_in_unions() {
        let dim = product();
        let column = random_column(1000, 75, 3);
        let idx = EncodedBitmapIndex::build(&dim, &column);
        let a = idx.query_level(LevelId(0), 1);
        let b = idx.query_level(LevelId(0), 3);
        let both = idx.query_level_in(LevelId(0), &[1, 3]);
        assert_eq!(both, a.or(&b));
        assert_eq!(idx.query_level_in(LevelId(0), &[]).count_ones(), 0);
    }

    #[test]
    fn level_queries_partition_rows() {
        let dim = product();
        let column = random_column(2000, 75, 11);
        let idx = EncodedBitmapIndex::build(&dim, &column);
        // Division-level queries must partition all rows.
        let mut total = 0;
        for d in 0..5 {
            total += idx.query_level(LevelId(0), d).count_ones();
        }
        assert_eq!(total, 2000);
    }

    #[test]
    fn slices_and_payload() {
        let dim = product();
        let idx = EncodedBitmapIndex::build(&dim, &random_column(800, 75, 1));
        assert_eq!(idx.slices_read(LevelId(0)), 3);
        assert_eq!(idx.slices_read(LevelId(2)), 8);
        // 8 slices × ceil(800/8) bytes.
        assert_eq!(idx.payload_bytes(), 8 * 100);
        assert_eq!(idx.rows(), 800);
    }

    #[test]
    #[should_panic(expected = "out of level cardinality")]
    fn components_reject_bad_member() {
        let e = HierarchicalEncoding::for_dimension(&product());
        let _ = e.components(LevelId(0), 5);
    }
}
