//! Whole-predicate evaluation over one fragment's indexes.
//!
//! A star query restricts several dimensions at once; per fragment the
//! bitmap join indexes of the referenced attributes are ANDed into one
//! indicator vector of qualifying rows. [`FragmentIndexes`] bundles the
//! per-dimension indexes of one fragment (standard or encoded, following
//! the dimension's [`BitmapScheme`](crate::BitmapScheme) decision) and
//! evaluates conjunctive predicates — the executable counterpart of the
//! cost model's bitmap access path.

use warlock_schema::{Dimension, DimensionId, LevelId};

use crate::{BitVec, EncodedBitmapIndex, StandardBitmapIndex};

/// The index kept for one dimension of one fragment.
#[derive(Debug, Clone, PartialEq)]
enum DimensionIndex {
    /// Standard indexes per level, from a single bottom-level build:
    /// `(level, index)` pairs for the levels the scheme covers.
    Standard(Vec<(LevelId, StandardBitmapIndex)>),
    /// One hierarchically encoded index covering every level.
    Encoded(EncodedBitmapIndex),
    /// No index on this dimension (predicates force a scan).
    None,
}

/// One conjunct of a star predicate: dimension, level, selected members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conjunct {
    /// Restricted dimension.
    pub dimension: DimensionId,
    /// Restricted level.
    pub level: LevelId,
    /// Selected member ordinals at that level.
    pub members: Vec<u64>,
}

/// Outcome of evaluating a conjunctive predicate through indexes.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// Every conjunct was index-covered; the vector marks qualifying rows.
    Exact(BitVec),
    /// Some conjunct had no covering index — the caller must scan.
    NeedsScan {
        /// The first uncovered conjunct.
        uncovered: Conjunct,
    },
}

/// Per-fragment bundle of bitmap join indexes.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentIndexes {
    rows: usize,
    indexes: Vec<DimensionIndex>,
}

impl FragmentIndexes {
    /// Starts building the bundle for a fragment of `rows` rows over
    /// `num_dimensions` dimensions (initially index-free).
    pub fn new(rows: usize, num_dimensions: usize) -> Self {
        Self {
            rows,
            indexes: vec![DimensionIndex::None; num_dimensions],
        }
    }

    /// Adds standard indexes on the given levels of a dimension, built
    /// from the fragment's bottom-member column of that dimension.
    ///
    /// # Panics
    ///
    /// Panics if the column length differs from the fragment's row count
    /// or a level id is out of range.
    pub fn with_standard(
        mut self,
        dimension: DimensionId,
        dim: &Dimension,
        levels: &[LevelId],
        bottom_column: &[u64],
    ) -> Self {
        assert_eq!(bottom_column.len(), self.rows, "column length");
        let bottom_card = dim.bottom().cardinality();
        let built = levels
            .iter()
            .map(|&level| {
                let card = dim.cardinality(level).expect("level exists");
                let per = bottom_card / card;
                let column: Vec<u64> = bottom_column.iter().map(|&m| m / per).collect();
                (level, StandardBitmapIndex::build(card, &column))
            })
            .collect();
        self.indexes[dimension.index()] = DimensionIndex::Standard(built);
        self
    }

    /// Adds a hierarchically encoded index on a dimension, built from the
    /// fragment's bottom-member column.
    pub fn with_encoded(
        mut self,
        dimension: DimensionId,
        dim: &Dimension,
        bottom_column: &[u64],
    ) -> Self {
        assert_eq!(bottom_column.len(), self.rows, "column length");
        self.indexes[dimension.index()] =
            DimensionIndex::Encoded(EncodedBitmapIndex::build(dim, bottom_column));
        self
    }

    /// Fragment row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Evaluates a conjunctive predicate: AND over per-conjunct vectors.
    ///
    /// An empty predicate selects every row. Conjuncts on unindexed
    /// dimensions (or standard-indexed dimensions missing the requested
    /// level when no encoded index exists) yield [`Selection::NeedsScan`].
    pub fn evaluate(&self, conjuncts: &[Conjunct]) -> Selection {
        let mut result = BitVec::ones(self.rows);
        for conjunct in conjuncts {
            let vector = match &self.indexes[conjunct.dimension.index()] {
                DimensionIndex::None => {
                    return Selection::NeedsScan {
                        uncovered: conjunct.clone(),
                    }
                }
                DimensionIndex::Standard(levels) => {
                    match levels.iter().find(|(l, _)| *l == conjunct.level) {
                        None => {
                            return Selection::NeedsScan {
                                uncovered: conjunct.clone(),
                            }
                        }
                        Some((_, index)) => index.query(&conjunct.members),
                    }
                }
                DimensionIndex::Encoded(index) => {
                    index.query_level_in(conjunct.level, &conjunct.members)
                }
            };
            result.and_assign(&vector);
            if result.count_ones() == 0 {
                // Short-circuit: nothing can qualify any more.
                return Selection::Exact(result);
            }
        }
        Selection::Exact(result)
    }

    /// Total payload bytes of every stored index in the bundle.
    pub fn payload_bytes(&self) -> usize {
        self.indexes
            .iter()
            .map(|ix| match ix {
                DimensionIndex::None => 0,
                DimensionIndex::Standard(levels) => {
                    levels.iter().map(|(_, i)| i.payload_bytes()).sum()
                }
                DimensionIndex::Encoded(i) => i.payload_bytes(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::Dimension;

    fn product() -> Dimension {
        Dimension::builder("product")
            .level("division", 4)
            .level("line", 16)
            .level("code", 64)
            .build()
            .unwrap()
    }

    fn channel() -> Dimension {
        Dimension::builder("channel")
            .level("base", 8)
            .build()
            .unwrap()
    }

    fn columns(rows: usize) -> (Vec<u64>, Vec<u64>) {
        let mut s = 12345u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let a = (0..rows).map(|_| next() % 64).collect();
        let b = (0..rows).map(|_| next() % 8).collect();
        (a, b)
    }

    fn conj(dim: u16, level: u16, members: &[u64]) -> Conjunct {
        Conjunct {
            dimension: DimensionId(dim),
            level: LevelId(level),
            members: members.to_vec(),
        }
    }

    fn bundle(rows: usize) -> (FragmentIndexes, Vec<u64>, Vec<u64>) {
        let (pa, ch) = columns(rows);
        let bundle = FragmentIndexes::new(rows, 2)
            .with_encoded(DimensionId(0), &product(), &pa)
            .with_standard(DimensionId(1), &channel(), &[LevelId(0)], &ch);
        (bundle, pa, ch)
    }

    #[test]
    fn conjunctive_evaluation_matches_reference() {
        let rows = 4000;
        let (bundle, pa, ch) = bundle(rows);
        let predicate = [conj(0, 1, &[5]), conj(1, 0, &[2, 3])];
        let Selection::Exact(v) = bundle.evaluate(&predicate) else {
            panic!("expected exact selection");
        };
        for row in 0..rows {
            let expect = pa[row] / 4 == 5 && (ch[row] == 2 || ch[row] == 3);
            assert_eq!(v.get(row), expect, "row {row}");
        }
    }

    #[test]
    fn empty_predicate_selects_everything() {
        let (bundle, _, _) = bundle(100);
        let Selection::Exact(v) = bundle.evaluate(&[]) else {
            panic!("expected exact");
        };
        assert_eq!(v.count_ones(), 100);
    }

    #[test]
    fn unindexed_dimension_forces_scan() {
        let (pa, _) = columns(50);
        let bundle = FragmentIndexes::new(50, 2).with_encoded(DimensionId(0), &product(), &pa);
        match bundle.evaluate(&[conj(1, 0, &[0])]) {
            Selection::NeedsScan { uncovered } => {
                assert_eq!(uncovered.dimension, DimensionId(1));
            }
            other => panic!("expected scan, got {other:?}"),
        }
    }

    #[test]
    fn missing_standard_level_forces_scan() {
        let (_, ch) = columns(50);
        let bundle = FragmentIndexes::new(50, 2).with_standard(
            DimensionId(1),
            &channel(),
            &[LevelId(0)],
            &ch,
        );
        // Channel has only level 0; asking for level 1 would be a schema
        // bug, so probe with a dimension-0 conjunct instead (unindexed).
        match bundle.evaluate(&[conj(0, 0, &[1])]) {
            Selection::NeedsScan { .. } => {}
            other => panic!("expected scan, got {other:?}"),
        }
    }

    #[test]
    fn encoded_covers_every_level() {
        let rows = 2000;
        let (bundle, pa, _) = bundle(rows);
        for (level, per) in [(0u16, 16u64), (1, 4), (2, 1)] {
            let Selection::Exact(v) = bundle.evaluate(&[conj(0, level, &[1])]) else {
                panic!("expected exact");
            };
            let expect = pa.iter().filter(|&&m| m / per == 1).count();
            assert_eq!(v.count_ones(), expect, "level {level}");
        }
    }

    #[test]
    fn contradiction_short_circuits_to_empty() {
        let (bundle, _, _) = bundle(500);
        let Selection::Exact(v) = bundle.evaluate(&[conj(0, 0, &[0]), conj(0, 0, &[1])]) else {
            panic!("expected exact");
        };
        // A row cannot be in division 0 and division 1 at once.
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn payload_accounting() {
        let (bundle, _, _) = bundle(4000);
        // Encoded product: 6 slices × 500 bytes; standard channel: 8
        // vectors × 500 bytes.
        assert_eq!(bundle.payload_bytes(), 6 * 500 + 8 * 500);
        let empty = FragmentIndexes::new(4000, 2);
        assert_eq!(empty.payload_bytes(), 0);
    }
}
