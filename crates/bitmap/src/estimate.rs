//! Analytical size and page-count estimators for bitmap indexes.
//!
//! The cost model never materializes bitmaps; it prices them through these
//! formulas. Bitmap fragmentation exactly follows the fact-table
//! fragmentation, so all estimators work per fragment: a vector (or slice)
//! over a fragment of `rows` rows occupies `ceil(rows/8)` payload bytes,
//! rounded up to whole pages.

use warlock_storage::PageConfig;

/// Pages of one bit vector (or one encoded slice) over a fragment of
/// `rows` rows. Zero-row fragments hold no pages.
pub fn vector_pages(rows: u64, page: PageConfig) -> u64 {
    if rows == 0 {
        return 0;
    }
    page.pages_for_bytes(rows.div_ceil(8))
}

/// Pages read by a `k`-value predicate through a *standard* index on a
/// fragment of `rows` rows: `k` vectors.
pub fn standard_read_pages(rows: u64, k: u64, page: PageConfig) -> u64 {
    k * vector_pages(rows, page)
}

/// Pages read by a predicate through an *encoded* index on a fragment of
/// `rows` rows needing `slices` prefix slices. The AND over slices reads
/// each slice once regardless of how many values the predicate selects.
pub fn encoded_read_pages(rows: u64, slices: u32, page: PageConfig) -> u64 {
    u64::from(slices) * vector_pages(rows, page)
}

/// Stored pages of a standard index (cardinality `cardinality`) on one
/// fragment of `rows` rows.
pub fn standard_stored_pages(rows: u64, cardinality: u64, page: PageConfig) -> u64 {
    cardinality * vector_pages(rows, page)
}

/// Stored pages of an encoded index (`total_bits` slices) on one fragment
/// of `rows` rows.
pub fn encoded_stored_pages(rows: u64, total_bits: u32, page: PageConfig) -> u64 {
    u64::from(total_bits) * vector_pages(rows, page)
}

/// Total stored bitmap pages of a whole scheme over a uniformly fragmented
/// fact table: per-fragment stored pages times the fragment count.
///
/// `vectors_per_row` is [`BitmapScheme::total_vectors_stored`]
/// (standard cardinalities plus encoded slices over all dimensions).
///
/// [`BitmapScheme::total_vectors_stored`]:
/// crate::BitmapScheme::total_vectors_stored
pub fn scheme_stored_pages(
    fragment_rows: u64,
    num_fragments: u64,
    vectors_per_row: u64,
    page: PageConfig,
) -> u64 {
    vectors_per_row * vector_pages(fragment_rows, page) * num_fragments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> PageConfig {
        PageConfig::new(8192)
    }

    #[test]
    fn vector_pages_rounding() {
        // 8192-byte page holds 65536 bits.
        assert_eq!(vector_pages(0, page()), 0);
        assert_eq!(vector_pages(1, page()), 1);
        assert_eq!(vector_pages(65536, page()), 1);
        assert_eq!(vector_pages(65537, page()), 2);
        assert_eq!(vector_pages(1_000_000, page()), 16);
    }

    #[test]
    fn standard_reads_scale_with_values() {
        assert_eq!(standard_read_pages(1_000_000, 1, page()), 16);
        assert_eq!(standard_read_pages(1_000_000, 3, page()), 48);
        assert_eq!(standard_read_pages(0, 3, page()), 0);
    }

    #[test]
    fn encoded_reads_scale_with_slices() {
        assert_eq!(encoded_read_pages(1_000_000, 12, page()), 12 * 16);
        assert_eq!(encoded_read_pages(1_000_000, 0, page()), 0);
    }

    #[test]
    fn encoded_beats_standard_on_high_cardinality() {
        // The core trade-off: storing a 900-value standard index vs a
        // 16-slice encoded index.
        let rows = 100_000;
        let std = standard_stored_pages(rows, 900, page());
        let enc = encoded_stored_pages(rows, 16, page());
        assert!(enc * 50 < std);
    }

    #[test]
    fn standard_beats_encoded_on_point_reads() {
        // Reading one value: standard reads 1 vector; encoded reads all
        // prefix slices.
        let rows = 100_000;
        assert!(standard_read_pages(rows, 1, page()) < encoded_read_pages(rows, 12, page()));
    }

    #[test]
    fn scheme_totals_multiply() {
        let per_frag = vector_pages(10_000, page());
        assert_eq!(
            scheme_stored_pages(10_000, 24, 111, page()),
            111 * per_frag * 24
        );
    }

    #[test]
    fn small_fragments_pay_page_rounding() {
        // 800-row fragments: vector payload is 100 bytes but still one
        // whole page — the rounding overhead the thresholds guard against.
        assert_eq!(vector_pages(800, page()), 1);
        let dense = scheme_stored_pages(800, 21_600, 10, page());
        let coarse = scheme_stored_pages(800 * 900, 24, 10, page());
        assert!(dense > coarse);
    }
}
