//! Property tests: the bitmap substrate against brute-force references.

use proptest::prelude::*;

use warlock_bitmap::{
    BitVec, Conjunct, EncodedBitmapIndex, FragmentIndexes, RleBitmap, Selection,
    StandardBitmapIndex,
};
use warlock_schema::{Dimension, DimensionId, LevelId};

/// A random three-level dimension with integral fan-outs.
fn arb_dimension() -> impl Strategy<Value = Dimension> {
    (2u64..5, 2u64..5, 2u64..6).prop_map(|(f0, f1, f2)| {
        Dimension::builder("d")
            .level("a", f0)
            .level("b", f0 * f1)
            .level("c", f0 * f1 * f2)
            .build()
            .expect("integral fan-outs")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encoded_equals_standard_on_random_dimensions(
        dim in arb_dimension(),
        seed in 0u64..1_000_000,
        rows in 1usize..600,
    ) {
        let bottom = dim.bottom().cardinality();
        let mut state = seed | 1;
        let column: Vec<u64> = (0..rows)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                (state >> 33) % bottom
            })
            .collect();
        let encoded = EncodedBitmapIndex::build(&dim, &column);
        for level in 0..dim.depth() {
            let card = dim.levels()[level].cardinality();
            let per = bottom / card;
            let ancestor: Vec<u64> = column.iter().map(|&m| m / per).collect();
            let standard = StandardBitmapIndex::build(card, &ancestor);
            // Probe a few members, always including the edges.
            for member in [0, card / 2, card - 1] {
                let a = encoded.query_level(LevelId(level as u16), member);
                let b = standard.bitmap_for(member);
                prop_assert_eq!(&a, b);
            }
        }
    }

    #[test]
    fn rle_merge_equals_uncompressed_ops(
        words_a in proptest::collection::vec(any::<u64>(), 1..40),
        words_b_seed in any::<u64>(),
    ) {
        let len = words_a.len() * 64;
        let a = BitVec::from_words(len, words_a.clone());
        // Derive b from a deterministically so lengths match.
        let words_b: Vec<u64> = words_a
            .iter()
            .map(|w| w.rotate_left((words_b_seed % 63) as u32) ^ words_b_seed)
            .collect();
        let b = BitVec::from_words(len, words_b);
        let ca = RleBitmap::compress(&a);
        let cb = RleBitmap::compress(&b);
        prop_assert_eq!(ca.and(&cb).decompress(), a.and(&b));
        prop_assert_eq!(ca.or(&cb).decompress(), a.or(&b));
        prop_assert_eq!(ca.count_ones(), a.count_ones());
    }

    #[test]
    fn fragment_indexes_match_row_filter(
        dim in arb_dimension(),
        seed in 0u64..1_000_000,
        rows in 1usize..400,
        member_seed in 0u64..97,
    ) {
        let bottom = dim.bottom().cardinality();
        let mut state = seed | 1;
        let column: Vec<u64> = (0..rows)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                (state >> 33) % bottom
            })
            .collect();
        let bundle = FragmentIndexes::new(rows, 1).with_encoded(DimensionId(0), &dim, &column);
        // Random level + member.
        let level = (member_seed % 3) as usize;
        let card = dim.levels()[level].cardinality();
        let member = member_seed % card;
        let per = bottom / card;
        let conjunct = Conjunct {
            dimension: DimensionId(0),
            level: LevelId(level as u16),
            members: vec![member],
        };
        match bundle.evaluate(&[conjunct]) {
            Selection::Exact(v) => {
                for (row, &m) in column.iter().enumerate() {
                    prop_assert_eq!(v.get(row), m / per == member);
                }
            }
            Selection::NeedsScan { .. } => prop_assert!(false, "encoded covers all levels"),
        }
    }

    #[test]
    fn bitvec_algebra_laws(
        indices_a in proptest::collection::btree_set(0usize..512, 0..64),
        indices_b in proptest::collection::btree_set(0usize..512, 0..64),
    ) {
        let a = BitVec::from_indices(512, indices_a.iter().copied());
        let b = BitVec::from_indices(512, indices_b.iter().copied());
        // De Morgan.
        prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        // Absorption.
        prop_assert_eq!(a.or(&a.and(&b)), a.clone());
        // Popcount of union = |A| + |B| − |A∩B|.
        prop_assert_eq!(
            a.or(&b).count_ones(),
            a.count_ones() + b.count_ones() - a.and(&b).count_ones()
        );
        // iter_ones is exactly the set.
        let ones: Vec<usize> = a.iter_ones().collect();
        let expect: Vec<usize> = indices_a.into_iter().collect();
        prop_assert_eq!(ones, expect);
    }
}
