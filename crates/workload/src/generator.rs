//! Seeded random workload generation.
//!
//! Used by stress tests, property tests and the benchmark harness to cover
//! the advisor with workloads beyond the APB-1-like preset.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::{DimensionPredicate, QueryClass, QueryMix};
use warlock_schema::StarSchema;

/// Knobs of the random workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Number of query classes to generate.
    pub num_classes: usize,
    /// Largest number of dimensions one class may reference (clamped to the
    /// schema's dimension count).
    pub max_dimensionality: usize,
    /// Probability that a predicate selects more than one value; multi-value
    /// predicates draw their count uniformly from `2..=max(2, card/4)`.
    pub range_probability: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            num_classes: 8,
            max_dimensionality: 3,
            range_probability: 0.25,
        }
    }
}

/// Deterministic random workload generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: StdRng,
    config: GeneratorConfig,
}

impl WorkloadGenerator {
    /// Creates a generator with the given seed and configuration.
    pub fn new(seed: u64, config: GeneratorConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// Generates one random query class against `schema`.
    pub fn query_class(&mut self, schema: &StarSchema, name: impl Into<String>) -> QueryClass {
        let num_dims = schema.num_dimensions();
        let dimensionality = self
            .rng
            .gen_range(1..=self.config.max_dimensionality.clamp(1, num_dims));
        let mut dims: Vec<usize> = (0..num_dims).collect();
        dims.shuffle(&mut self.rng);
        dims.truncate(dimensionality);

        let mut class = QueryClass::new(name);
        for d in dims {
            let dimension = &schema.dimensions()[d];
            let level = self.rng.gen_range(0..dimension.depth());
            let card = dimension.levels()[level].cardinality();
            let values = if card > 1 && self.rng.gen_bool(self.config.range_probability) {
                let hi = (card / 4).max(2).min(card);
                self.rng.gen_range(2..=hi).min(card)
            } else {
                1
            };
            class = class.with(d as u16, DimensionPredicate::range(level as u16, values));
        }
        class
    }

    /// Generates a full weighted mix against `schema`.
    ///
    /// Weights are drawn uniformly from `[1, 10)`, so shares are strictly
    /// positive. The produced mix always validates against `schema`.
    pub fn mix(&mut self, schema: &StarSchema) -> QueryMix {
        let mut builder = QueryMix::builder();
        for i in 0..self.config.num_classes.max(1) {
            let class = self.query_class(schema, format!("gen_q{i:02}"));
            let weight = self.rng.gen_range(1.0..10.0);
            builder = builder.class(class, weight);
        }
        builder.build().expect("generated mix is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};

    fn schema() -> StarSchema {
        apb1_like_schema(Apb1Config::default()).unwrap()
    }

    #[test]
    fn generated_mix_is_valid_and_sized() {
        let s = schema();
        let mut g = WorkloadGenerator::new(7, GeneratorConfig::default());
        let mix = g.mix(&s);
        assert_eq!(mix.len(), 8);
        mix.validate(&s).unwrap();
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = schema();
        let mix_a = WorkloadGenerator::new(11, GeneratorConfig::default()).mix(&s);
        let mix_b = WorkloadGenerator::new(11, GeneratorConfig::default()).mix(&s);
        let mix_c = WorkloadGenerator::new(12, GeneratorConfig::default()).mix(&s);
        assert_eq!(mix_a, mix_b);
        assert_ne!(mix_a, mix_c);
    }

    #[test]
    fn respects_max_dimensionality() {
        let s = schema();
        let cfg = GeneratorConfig {
            num_classes: 32,
            max_dimensionality: 2,
            range_probability: 0.5,
        };
        let mix = WorkloadGenerator::new(3, cfg).mix(&s);
        for (class, _) in mix.iter() {
            assert!(class.dimensionality() <= 2);
            assert!(class.dimensionality() >= 1);
        }
    }

    #[test]
    fn many_seeds_always_validate() {
        let s = schema();
        for seed in 0..50 {
            let mix = WorkloadGenerator::new(seed, GeneratorConfig::default()).mix(&s);
            mix.validate(&s).unwrap();
        }
    }

    #[test]
    fn dimensionality_clamps_to_schema() {
        let s = schema();
        let cfg = GeneratorConfig {
            num_classes: 8,
            max_dimensionality: 99,
            range_probability: 0.0,
        };
        let mix = WorkloadGenerator::new(3, cfg).mix(&s);
        for (class, _) in mix.iter() {
            assert!(class.dimensionality() <= s.num_dimensions());
        }
    }
}
