//! Drift scoring between the observed and configured query mix.
//!
//! [`mix_divergence`] reduces a [`StatsWindow`] against a configured
//! [`QueryMix`] to one scalar in `[0, 1]` — the normalized L1 (total
//! variation) distance between the two share distributions — and
//! [`DriftDetector`] turns the score stream into stable/drifting
//! transitions with hysteresis, so a score hovering around one
//! threshold cannot flap the detector.
//!
//! Both pieces are deterministic: the divergence sums in a fixed order
//! (configured classes in mix order, then observed-only classes in
//! name order), so the same window and mix always produce the same
//! bits, at any worker count and any ingestion batch split.

use crate::mix::QueryMix;
use crate::stats::StatsWindow;

/// Normalized L1 (total variation) divergence between the configured
/// mix and the observed window, in `[0, 1]`: `0.0` means the observed
/// shares match the configuration exactly, `1.0` means the two
/// workloads are disjoint.
///
/// A window with no weight scores `0.0` — no traffic is no evidence of
/// drift.
pub fn mix_divergence(configured: &QueryMix, observed: &StatsWindow) -> f64 {
    let total = observed.total_weight();
    if total <= 0.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    // Configured classes first, in mix order.
    for (class, share) in configured.iter() {
        let observed_share = observed.weight_of(class.name()) / total;
        sum += (share - observed_share).abs();
    }
    // Classes the configuration does not know about, in name order.
    for (name, weight) in observed.weights() {
        if configured.class_by_name(name).is_none() {
            sum += weight / total;
        }
    }
    0.5 * sum
}

/// Whether the observed workload currently matches the configured mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftState {
    /// The observed mix is (still) close to the configured one.
    Stable,
    /// The observed mix has diverged past the enter threshold and has
    /// not yet fallen back below the exit threshold.
    Drifting,
}

/// An edge reported by [`DriftDetector::update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftTransition {
    /// The score rose above the enter threshold: stable → drifting.
    Entered,
    /// The score fell below the exit threshold: drifting → stable.
    Exited,
}

/// Hysteresis state machine over a drift-score stream.
///
/// The detector enters `Drifting` only when a score is **strictly
/// above** `enter`, and returns to `Stable` only when a score is
/// **strictly below** `exit`. With `exit <= enter` a score sitting
/// exactly on either threshold — or anywhere between them — never
/// causes a transition, so the detector cannot flap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftDetector {
    enter: f64,
    exit: f64,
    state: DriftState,
}

impl DriftDetector {
    /// Creates a detector in the `Stable` state.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= exit <= enter <= 1.0` and both are finite
    /// — the advisor configuration validates the knobs before a
    /// detector is ever built.
    pub fn new(enter: f64, exit: f64) -> Self {
        assert!(
            enter.is_finite() && exit.is_finite() && 0.0 <= exit && exit <= enter && enter <= 1.0,
            "drift thresholds must satisfy 0 <= exit <= enter <= 1, got enter {enter} / exit {exit}"
        );
        Self {
            enter,
            exit,
            state: DriftState::Stable,
        }
    }

    /// The current state.
    #[inline]
    pub fn state(&self) -> DriftState {
        self.state
    }

    /// The `(enter, exit)` thresholds.
    #[inline]
    pub fn thresholds(&self) -> (f64, f64) {
        (self.enter, self.exit)
    }

    /// Feeds one score; returns the edge if the state changed.
    pub fn update(&mut self, score: f64) -> Option<DriftTransition> {
        match self.state {
            DriftState::Stable if score > self.enter => {
                self.state = DriftState::Drifting;
                Some(DriftTransition::Entered)
            }
            DriftState::Drifting if score < self.exit => {
                self.state = DriftState::Stable;
                Some(DriftTransition::Exited)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{DimensionPredicate, QueryClass};
    use crate::stats::ClassObservation;

    fn two_class_mix() -> QueryMix {
        QueryMix::builder()
            .class(
                QueryClass::new("a").with(0, DimensionPredicate::point(0)),
                3.0,
            )
            .class(
                QueryClass::new("b").with(1, DimensionPredicate::point(0)),
                1.0,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn matching_traffic_scores_zero() {
        let mix = two_class_mix();
        let mut w = StatsWindow::new(1e12);
        assert_eq!(mix_divergence(&mix, &w), 0.0, "empty window");
        w.ingest(&[
            ClassObservation::new("a", 300),
            ClassObservation::new("b", 100),
        ]);
        let score = mix_divergence(&mix, &w);
        assert!(score < 1e-6, "matching shares scored {score}");
    }

    #[test]
    fn disjoint_traffic_scores_one() {
        let mix = two_class_mix();
        let mut w = StatsWindow::new(1e12);
        w.ingest(&[ClassObservation::new("elsewhere", 500)]);
        let score = mix_divergence(&mix, &w);
        assert!((score - 1.0).abs() < 1e-12, "disjoint scored {score}");
    }

    #[test]
    fn inverted_shares_score_the_l1_distance() {
        let mix = two_class_mix(); // configured 0.75 / 0.25
        let mut w = StatsWindow::new(1e12);
        w.ingest(&[
            ClassObservation::new("a", 100),
            ClassObservation::new("b", 300),
        ]); // observed 0.25 / 0.75
        let score = mix_divergence(&mix, &w);
        assert!((score - 0.5).abs() < 1e-9, "{score}");
    }

    #[test]
    fn hysteresis_enters_and_exits_on_strict_crossings_only() {
        let mut d = DriftDetector::new(0.3, 0.1);
        assert_eq!(d.state(), DriftState::Stable);
        assert_eq!(d.update(0.3), None, "exactly on enter must not enter");
        assert_eq!(d.update(0.2), None);
        assert_eq!(d.update(0.31), Some(DriftTransition::Entered));
        assert_eq!(d.state(), DriftState::Drifting);
        assert_eq!(d.update(0.5), None, "already drifting");
        assert_eq!(d.update(0.1), None, "exactly on exit must not exit");
        assert_eq!(d.update(0.2), None, "between thresholds holds state");
        assert_eq!(d.update(0.09), Some(DriftTransition::Exited));
        assert_eq!(d.state(), DriftState::Stable);
    }

    #[test]
    fn equal_thresholds_still_cannot_flap_on_the_threshold() {
        let mut d = DriftDetector::new(0.2, 0.2);
        for _ in 0..100 {
            assert_eq!(d.update(0.2), None);
        }
        assert_eq!(d.update(0.25), Some(DriftTransition::Entered));
        for _ in 0..100 {
            assert_eq!(d.update(0.2), None);
        }
        assert_eq!(d.update(0.15), Some(DriftTransition::Exited));
    }

    #[test]
    #[should_panic(expected = "drift thresholds")]
    fn inverted_thresholds_panic() {
        let _ = DriftDetector::new(0.1, 0.3);
    }
}
