//! Star-query classes.

use std::collections::BTreeMap;
use std::fmt;

use warlock_schema::{DimensionId, LevelId, LevelRef, StarSchema};

/// Errors raised while building or validating workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A predicate references a dimension the schema does not have.
    UnknownDimension {
        /// The query class name.
        query: String,
        /// The out-of-range dimension index.
        index: usize,
    },
    /// A predicate references a level the dimension does not have.
    UnknownLevel {
        /// The query class name.
        query: String,
        /// The offending reference.
        level_ref: LevelRef,
    },
    /// A predicate selects zero values or more values than the level holds.
    BadValueCount {
        /// The query class name.
        query: String,
        /// The offending reference.
        level_ref: LevelRef,
        /// Requested number of values.
        values: u64,
        /// The level's cardinality.
        cardinality: u64,
    },
    /// A query class references no dimension at all.
    EmptyQuery {
        /// The query class name.
        query: String,
    },
    /// A mix has no query classes or all-zero weights.
    EmptyMix,
    /// A weight is negative, NaN or infinite.
    BadWeight {
        /// The query class name.
        query: String,
        /// The bad weight.
        weight: f64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownDimension { query, index } => {
                write!(f, "query `{query}` references unknown dimension {index}")
            }
            Self::UnknownLevel { query, level_ref } => {
                write!(f, "query `{query}` references unknown level {level_ref}")
            }
            Self::BadValueCount {
                query,
                level_ref,
                values,
                cardinality,
            } => write!(
                f,
                "query `{query}` selects {values} values of {level_ref} \
                 (cardinality {cardinality})"
            ),
            Self::EmptyQuery { query } => {
                write!(f, "query `{query}` references no dimension")
            }
            Self::EmptyMix => write!(f, "query mix is empty or has zero total weight"),
            Self::BadWeight { query, weight } => {
                write!(f, "query `{query}` has invalid weight {weight}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// One per-dimension predicate of a star query: the referenced hierarchy
/// level and how many member values of that level the query selects.
///
/// `values = 1` is a point restriction ("January 2001"); larger counts model
/// range or IN-list restrictions ("Q1+Q2"). Selected values are assumed to
/// be drawn uniformly from the level's members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimensionPredicate {
    /// Referenced level within the dimension.
    pub level: LevelId,
    /// Number of selected member values at that level (≥ 1).
    pub values: u64,
}

impl DimensionPredicate {
    /// Point restriction on the given level.
    pub fn point(level: u16) -> Self {
        Self {
            level: LevelId(level),
            values: 1,
        }
    }

    /// Restriction selecting `values` members of the given level.
    pub fn range(level: u16, values: u64) -> Self {
        Self {
            level: LevelId(level),
            values,
        }
    }
}

/// One star-query class.
///
/// A class is defined by the subset of dimensions it references and one
/// [`DimensionPredicate`] per referenced dimension. Unreferenced dimensions
/// are unrestricted.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryClass {
    name: String,
    predicates: BTreeMap<DimensionId, DimensionPredicate>,
}

impl QueryClass {
    /// Creates a named, empty query class; add predicates with
    /// [`with`](Self::with).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            predicates: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) the predicate on `dimension`.
    pub fn with(mut self, dimension: u16, predicate: DimensionPredicate) -> Self {
        self.predicates.insert(DimensionId(dimension), predicate);
        self
    }

    /// The class name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-dimension predicates, keyed by dimension id.
    #[inline]
    pub fn predicates(&self) -> &BTreeMap<DimensionId, DimensionPredicate> {
        &self.predicates
    }

    /// The predicate on `dimension`, if any.
    #[inline]
    pub fn predicate(&self, dimension: DimensionId) -> Option<DimensionPredicate> {
        self.predicates.get(&dimension).copied()
    }

    /// Which dimensions the class references.
    pub fn referenced_dimensions(&self) -> impl Iterator<Item = DimensionId> + '_ {
        self.predicates.keys().copied()
    }

    /// Number of referenced dimensions.
    #[inline]
    pub fn dimensionality(&self) -> usize {
        self.predicates.len()
    }

    /// Validates the class against a schema.
    pub fn validate(&self, schema: &StarSchema) -> Result<(), WorkloadError> {
        if self.predicates.is_empty() {
            return Err(WorkloadError::EmptyQuery {
                query: self.name.clone(),
            });
        }
        for (&dim, pred) in &self.predicates {
            let dimension = schema
                .dimension(dim)
                .map_err(|_| WorkloadError::UnknownDimension {
                    query: self.name.clone(),
                    index: dim.index(),
                })?;
            let level_ref = LevelRef {
                dimension: dim,
                level: pred.level,
            };
            let card =
                dimension
                    .cardinality(pred.level)
                    .map_err(|_| WorkloadError::UnknownLevel {
                        query: self.name.clone(),
                        level_ref,
                    })?;
            if pred.values == 0 || pred.values > card {
                return Err(WorkloadError::BadValueCount {
                    query: self.name.clone(),
                    level_ref,
                    values: pred.values,
                    cardinality: card,
                });
            }
        }
        Ok(())
    }

    /// Fraction of fact rows the class selects — the product of per-dimension
    /// selectivities `values / cardinality(level)` (dimension independence).
    pub fn selectivity(&self, schema: &StarSchema) -> f64 {
        self.predicates
            .iter()
            .map(|(&dim, pred)| {
                let card = schema
                    .dimension(dim)
                    .and_then(|d| d.cardinality(pred.level))
                    .expect("validated query class");
                pred.values as f64 / card as f64
            })
            .product()
    }

    /// Expected number of fact rows the class touches.
    pub fn expected_rows(&self, schema: &StarSchema, fact_index: usize) -> f64 {
        self.selectivity(schema) * schema.fact_rows(fact_index) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};

    fn schema() -> StarSchema {
        apb1_like_schema(Apb1Config::default()).unwrap()
    }

    #[test]
    fn build_and_inspect() {
        let q = QueryClass::new("q")
            .with(0, DimensionPredicate::point(4)) // product.class
            .with(2, DimensionPredicate::range(1, 2)); // time.quarter IN (2)
        assert_eq!(q.dimensionality(), 2);
        assert_eq!(
            q.predicate(DimensionId(0)),
            Some(DimensionPredicate::point(4))
        );
        assert_eq!(q.predicate(DimensionId(1)), None);
        let dims: Vec<_> = q.referenced_dimensions().collect();
        assert_eq!(dims, vec![DimensionId(0), DimensionId(2)]);
    }

    #[test]
    fn selectivity_is_product_of_fractions() {
        let s = schema();
        let q = QueryClass::new("q")
            .with(0, DimensionPredicate::point(4)) // 1/900
            .with(2, DimensionPredicate::range(1, 2)); // 2/8
        q.validate(&s).unwrap();
        let sel = q.selectivity(&s);
        let expected = (1.0 / 900.0) * (2.0 / 8.0);
        assert!((sel - expected).abs() < 1e-15);
        let rows = q.expected_rows(&s, 0);
        assert!((rows - sel * s.fact_rows(0) as f64).abs() < 1e-6);
    }

    #[test]
    fn validation_catches_unknown_dimension() {
        let s = schema();
        let q = QueryClass::new("bad").with(9, DimensionPredicate::point(0));
        assert!(matches!(
            q.validate(&s).unwrap_err(),
            WorkloadError::UnknownDimension { .. }
        ));
    }

    #[test]
    fn validation_catches_unknown_level() {
        let s = schema();
        let q = QueryClass::new("bad").with(3, DimensionPredicate::point(5)); // channel has 1 level
        assert!(matches!(
            q.validate(&s).unwrap_err(),
            WorkloadError::UnknownLevel { .. }
        ));
    }

    #[test]
    fn validation_catches_bad_value_counts() {
        let s = schema();
        let too_many = QueryClass::new("bad").with(2, DimensionPredicate::range(0, 3)); // 2 years
        assert!(matches!(
            too_many.validate(&s).unwrap_err(),
            WorkloadError::BadValueCount { .. }
        ));
        let zero = QueryClass::new("bad").with(2, DimensionPredicate::range(0, 0));
        assert!(matches!(
            zero.validate(&s).unwrap_err(),
            WorkloadError::BadValueCount { .. }
        ));
    }

    #[test]
    fn validation_catches_empty_query() {
        let s = schema();
        let q = QueryClass::new("empty");
        assert!(matches!(
            q.validate(&s).unwrap_err(),
            WorkloadError::EmptyQuery { .. }
        ));
    }

    #[test]
    fn replacing_predicate_keeps_one_per_dimension() {
        let q = QueryClass::new("q")
            .with(0, DimensionPredicate::point(1))
            .with(0, DimensionPredicate::point(2));
        assert_eq!(q.dimensionality(), 1);
        assert_eq!(
            q.predicate(DimensionId(0)),
            Some(DimensionPredicate::point(2))
        );
    }

    #[test]
    fn error_display() {
        let e = WorkloadError::BadValueCount {
            query: "q7".into(),
            level_ref: LevelRef::new(1, 0),
            values: 500,
            cardinality: 90,
        };
        let s = e.to_string();
        assert!(s.contains("q7") && s.contains("500") && s.contains("90"));
    }
}
