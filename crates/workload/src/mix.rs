//! Weighted query mixes.

use crate::{QueryClass, WorkloadError};
use warlock_schema::StarSchema;

/// One query class together with its normalized workload share.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedClass {
    /// The query class.
    pub class: QueryClass,
    /// Normalized share of the workload, in `(0, 1]`; shares sum to 1.
    pub share: f64,
}

/// A weighted set of query classes — the "weighted star query mix" of the
/// paper's input layer.
///
/// Weights are normalized to shares at build time. The advisor evaluates
/// every fragmentation candidate against the whole mix, weighting each
/// class's cost by its share.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMix {
    classes: Vec<WeightedClass>,
}

impl QueryMix {
    /// Starts building a mix.
    pub fn builder() -> QueryMixBuilder {
        QueryMixBuilder {
            entries: Vec::new(),
        }
    }

    /// The weighted classes, shares summing to 1.
    #[inline]
    pub fn classes(&self) -> &[WeightedClass] {
        &self.classes
    }

    /// Number of query classes.
    #[inline]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the mix is empty (never true for a built mix).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates over `(class, share)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&QueryClass, f64)> + '_ {
        self.classes.iter().map(|w| (&w.class, w.share))
    }

    /// Finds a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<&WeightedClass> {
        self.classes.iter().find(|w| w.class.name() == name)
    }

    /// Validates every class against the schema.
    pub fn validate(&self, schema: &StarSchema) -> Result<(), WorkloadError> {
        for w in &self.classes {
            w.class.validate(schema)?;
        }
        Ok(())
    }

    /// Returns a copy of the mix without the named class, re-normalized.
    /// Returns `None` if removing it would empty the mix or the name is
    /// unknown.
    pub fn without_class(&self, name: &str) -> Option<QueryMix> {
        if self.class_by_name(name).is_none() || self.len() == 1 {
            return None;
        }
        let mut b = QueryMix::builder();
        for w in &self.classes {
            if w.class.name() != name {
                b = b.class(w.class.clone(), w.share);
            }
        }
        b.build().ok()
    }

    /// Workload-weighted average selectivity against `schema`.
    pub fn average_selectivity(&self, schema: &StarSchema) -> f64 {
        self.iter()
            .map(|(c, share)| share * c.selectivity(schema))
            .sum()
    }
}

/// Builder for [`QueryMix`].
#[derive(Debug, Clone)]
pub struct QueryMixBuilder {
    entries: Vec<(QueryClass, f64)>,
}

impl QueryMixBuilder {
    /// Adds a class with a raw (unnormalized) weight.
    pub fn class(mut self, class: QueryClass, weight: f64) -> Self {
        self.entries.push((class, weight));
        self
    }

    /// Normalizes weights and produces the mix.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::EmptyMix`] when no classes were added or the total
    /// weight is zero; [`WorkloadError::BadWeight`] on negative or non-finite
    /// weights.
    pub fn build(self) -> Result<QueryMix, WorkloadError> {
        for (class, weight) in &self.entries {
            if !weight.is_finite() || *weight < 0.0 {
                return Err(WorkloadError::BadWeight {
                    query: class.name().to_owned(),
                    weight: *weight,
                });
            }
        }
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        if self.entries.is_empty() || total <= 0.0 {
            return Err(WorkloadError::EmptyMix);
        }
        Ok(QueryMix {
            classes: self
                .entries
                .into_iter()
                .filter(|(_, w)| *w > 0.0)
                .map(|(class, weight)| WeightedClass {
                    class,
                    share: weight / total,
                })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DimensionPredicate;

    fn q(name: &str) -> QueryClass {
        QueryClass::new(name).with(0, DimensionPredicate::point(0))
    }

    #[test]
    fn weights_normalize_to_shares() {
        let mix = QueryMix::builder()
            .class(q("a"), 1.0)
            .class(q("b"), 3.0)
            .build()
            .unwrap();
        assert_eq!(mix.len(), 2);
        let shares: Vec<f64> = mix.iter().map(|(_, s)| s).collect();
        assert!((shares[0] - 0.25).abs() < 1e-12);
        assert!((shares[1] - 0.75).abs() < 1e-12);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_classes_are_dropped() {
        let mix = QueryMix::builder()
            .class(q("a"), 0.0)
            .class(q("b"), 2.0)
            .build()
            .unwrap();
        assert_eq!(mix.len(), 1);
        assert_eq!(mix.classes()[0].class.name(), "b");
    }

    #[test]
    fn empty_and_zero_total_rejected() {
        assert!(matches!(
            QueryMix::builder().build().unwrap_err(),
            WorkloadError::EmptyMix
        ));
        assert!(matches!(
            QueryMix::builder().class(q("a"), 0.0).build().unwrap_err(),
            WorkloadError::EmptyMix
        ));
    }

    #[test]
    fn bad_weights_rejected() {
        assert!(matches!(
            QueryMix::builder().class(q("a"), -1.0).build().unwrap_err(),
            WorkloadError::BadWeight { .. }
        ));
        assert!(matches!(
            QueryMix::builder()
                .class(q("a"), f64::NAN)
                .build()
                .unwrap_err(),
            WorkloadError::BadWeight { .. }
        ));
    }

    #[test]
    fn lookup_and_removal() {
        let mix = QueryMix::builder()
            .class(q("a"), 1.0)
            .class(q("b"), 1.0)
            .build()
            .unwrap();
        assert!(mix.class_by_name("a").is_some());
        assert!(mix.class_by_name("zzz").is_none());

        let reduced = mix.without_class("a").unwrap();
        assert_eq!(reduced.len(), 1);
        assert!((reduced.classes()[0].share - 1.0).abs() < 1e-12);

        assert!(mix.without_class("zzz").is_none());
        assert!(reduced.without_class("b").is_none()); // would empty the mix
    }

    #[test]
    fn average_selectivity_is_weighted() {
        use warlock_schema::{apb1_like_schema, Apb1Config};
        let s = apb1_like_schema(Apb1Config::default()).unwrap();
        // class on product.division (1/5) and one on channel (1/9)
        let a = QueryClass::new("a").with(0, DimensionPredicate::point(0));
        let b = QueryClass::new("b").with(3, DimensionPredicate::point(0));
        let mix = QueryMix::builder()
            .class(a, 1.0)
            .class(b, 1.0)
            .build()
            .unwrap();
        mix.validate(&s).unwrap();
        let expect = 0.5 * (1.0 / 5.0) + 0.5 * (1.0 / 9.0);
        assert!((mix.average_selectivity(&s) - expect).abs() < 1e-12);
    }
}
