//! APB-1-like demonstration workload.
//!
//! APB-1 specifies a set of OLAP operations against its star schema; the
//! WARLOCK demonstration used "APB-1-based configurations" as its workload.
//! This module reconstructs a representative weighted star-query mix over
//! the APB-1-like schema of `warlock-schema`: ten query classes covering
//! every dimension subset size from one to four, with heavier weight on the
//! mid-selectivity reporting classes, as typical for warehouse workloads.
//!
//! Dimension ids follow the preset order: 0 = product, 1 = customer,
//! 2 = time, 3 = channel. Level ids are coarse → fine (product: division 0,
//! line 1, family 2, group 3, class 4, code 5; customer: retailer 0,
//! store 1; time: year 0, quarter 1, month 2; channel: base 0).

use crate::{DimensionPredicate, QueryClass, QueryMix, WorkloadError};

/// Builds the ten-class APB-1-like query mix.
///
/// | class | references | share |
/// |-------|------------|-------|
/// | `q01_month_store_code` | time.month, customer.store, product.code | 5 % |
/// | `q02_month_class` | time.month, product.class | 15 % |
/// | `q03_quarter_group` | time.quarter, product.group | 15 % |
/// | `q04_year_line` | time.year, product.line | 10 % |
/// | `q05_month_retailer` | time.month, customer.retailer | 10 % |
/// | `q06_channel_month` | channel.base, time.month | 10 % |
/// | `q07_store_class` | customer.store, product.class | 10 % |
/// | `q08_quarter_family_retailer` | time.quarter, product.family, customer.retailer | 10 % |
/// | `q09_month_division_channel` | time.month, product.division, channel.base | 10 % |
/// | `q10_year_full_slice` | time.year, product.division, customer.retailer, channel.base | 5 % |
pub fn apb1_like_mix() -> Result<QueryMix, WorkloadError> {
    const PRODUCT: u16 = 0;
    const CUSTOMER: u16 = 1;
    const TIME: u16 = 2;
    const CHANNEL: u16 = 3;

    QueryMix::builder()
        .class(
            QueryClass::new("q01_month_store_code")
                .with(TIME, DimensionPredicate::point(2))
                .with(CUSTOMER, DimensionPredicate::point(1))
                .with(PRODUCT, DimensionPredicate::point(5)),
            5.0,
        )
        .class(
            QueryClass::new("q02_month_class")
                .with(TIME, DimensionPredicate::point(2))
                .with(PRODUCT, DimensionPredicate::point(4)),
            15.0,
        )
        .class(
            QueryClass::new("q03_quarter_group")
                .with(TIME, DimensionPredicate::point(1))
                .with(PRODUCT, DimensionPredicate::point(3)),
            15.0,
        )
        .class(
            QueryClass::new("q04_year_line")
                .with(TIME, DimensionPredicate::point(0))
                .with(PRODUCT, DimensionPredicate::point(1)),
            10.0,
        )
        .class(
            QueryClass::new("q05_month_retailer")
                .with(TIME, DimensionPredicate::point(2))
                .with(CUSTOMER, DimensionPredicate::point(0)),
            10.0,
        )
        .class(
            QueryClass::new("q06_channel_month")
                .with(CHANNEL, DimensionPredicate::point(0))
                .with(TIME, DimensionPredicate::point(2)),
            10.0,
        )
        .class(
            QueryClass::new("q07_store_class")
                .with(CUSTOMER, DimensionPredicate::point(1))
                .with(PRODUCT, DimensionPredicate::point(4)),
            10.0,
        )
        .class(
            QueryClass::new("q08_quarter_family_retailer")
                .with(TIME, DimensionPredicate::point(1))
                .with(PRODUCT, DimensionPredicate::point(2))
                .with(CUSTOMER, DimensionPredicate::point(0)),
            10.0,
        )
        .class(
            QueryClass::new("q09_month_division_channel")
                .with(TIME, DimensionPredicate::point(2))
                .with(PRODUCT, DimensionPredicate::point(0))
                .with(CHANNEL, DimensionPredicate::point(0)),
            10.0,
        )
        .class(
            QueryClass::new("q10_year_full_slice")
                .with(TIME, DimensionPredicate::point(0))
                .with(PRODUCT, DimensionPredicate::point(0))
                .with(CUSTOMER, DimensionPredicate::point(0))
                .with(CHANNEL, DimensionPredicate::point(0)),
            5.0,
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};

    #[test]
    fn mix_builds_and_validates_against_preset_schema() {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        assert_eq!(mix.len(), 10);
        mix.validate(&schema).unwrap();
        let total: f64 = mix.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn covers_dimensionalities_one_to_four() {
        let mix = apb1_like_mix().unwrap();
        let dims: Vec<usize> = mix.iter().map(|(c, _)| c.dimensionality()).collect();
        assert!(dims.contains(&2));
        assert!(dims.contains(&3));
        assert!(dims.contains(&4));
        assert_eq!(*dims.iter().max().unwrap(), 4);
    }

    #[test]
    fn selectivities_are_distinct_and_small() {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        for (class, _) in mix.iter() {
            let sel = class.selectivity(&schema);
            assert!(sel > 0.0 && sel <= 0.5, "{}: {sel}", class.name());
        }
        // The pinpoint class is the most selective.
        let pin = mix.class_by_name("q01_month_store_code").unwrap();
        let pin_sel = pin.class.selectivity(&schema);
        for (class, _) in mix.iter() {
            assert!(pin_sel <= class.selectivity(&schema));
        }
    }
}
