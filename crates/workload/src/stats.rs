//! Observed workload statistics.
//!
//! A resident optimizer needs to know what the warehouse is *actually*
//! being asked, not what its configuration file claims. [`StatsWindow`]
//! ingests batched per-query-class observations (the
//! `pg_stat_statements` idiom: counts plus optional latency hints) into
//! an exponentially decayed sliding window whose state is a pure
//! function of the ordered observation sequence.
//!
//! ## Determinism
//!
//! Decay is measured in **observed queries**, not wall-clock time: each
//! observation of `count` queries first decays every tracked class by
//! `0.5^(count / half_life)` and then credits `count` to its own class.
//! Because every update depends only on the observation it ingests and
//! the state before it, splitting one observation stream into different
//! batch boundaries yields bit-identical windows — the property the
//! drift detector's reproducibility rests on. No clock is read
//! anywhere.

use std::collections::BTreeMap;

/// One batched observation of live traffic: `count` queries of class
/// `class` were executed, optionally with their mean latency.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassObservation {
    /// The query-class name (matched against the configured mix by
    /// exact name).
    pub class: String,
    /// How many queries of the class were observed.
    pub count: u64,
    /// Mean latency of those queries in milliseconds, if the collector
    /// measured one. Latency hints are carried through the window for
    /// reporting; they never influence drift scores. Non-finite or
    /// negative hints are ignored.
    pub mean_latency_ms: Option<f64>,
}

impl ClassObservation {
    /// A count-only observation.
    pub fn new(class: impl Into<String>, count: u64) -> Self {
        Self {
            class: class.into(),
            count,
            mean_latency_ms: None,
        }
    }

    /// Attaches a mean-latency hint.
    pub fn with_latency_ms(mut self, mean_latency_ms: f64) -> Self {
        self.mean_latency_ms = Some(mean_latency_ms);
        self
    }
}

/// Decayed per-class accumulators.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct ClassStat {
    /// Decayed query count.
    weight: f64,
    /// Decayed count of queries that carried a latency hint.
    latency_weight: f64,
    /// Decayed sum of `mean_latency_ms × count` over hinted queries.
    latency_sum: f64,
}

/// An exponentially decayed window over observed query-class traffic.
///
/// See the [module docs](self) for the decay model and its determinism
/// guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsWindow {
    half_life: f64,
    observed: u64,
    classes: BTreeMap<String, ClassStat>,
}

impl StatsWindow {
    /// Creates an empty window whose weights halve every `half_life`
    /// observed queries.
    ///
    /// # Panics
    ///
    /// Panics when `half_life` is not a finite positive number — the
    /// advisor configuration validates the knob before a window is ever
    /// built.
    pub fn new(half_life: f64) -> Self {
        assert!(
            half_life.is_finite() && half_life > 0.0,
            "stats half-life must be a finite positive query count, got {half_life}"
        );
        Self {
            half_life,
            observed: 0,
            classes: BTreeMap::new(),
        }
    }

    /// The half-life in observed queries.
    #[inline]
    pub fn half_life(&self) -> f64 {
        self.half_life
    }

    /// Total queries ever ingested (not decayed).
    #[inline]
    pub fn observed_queries(&self) -> u64 {
        self.observed
    }

    /// Number of distinct classes the window currently tracks.
    #[inline]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the window has seen no traffic at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Ingests one batch of observations, in order. Equivalent to
    /// ingesting each observation as its own batch.
    pub fn ingest(&mut self, batch: &[ClassObservation]) {
        for obs in batch {
            self.ingest_one(obs);
        }
    }

    fn ingest_one(&mut self, obs: &ClassObservation) {
        if obs.count == 0 {
            return;
        }
        let count = obs.count as f64;
        let lambda = 0.5_f64.powf(count / self.half_life);
        for stat in self.classes.values_mut() {
            stat.weight *= lambda;
            stat.latency_weight *= lambda;
            stat.latency_sum *= lambda;
        }
        let stat = self.classes.entry(obs.class.clone()).or_default();
        stat.weight += count;
        if let Some(latency) = obs.mean_latency_ms {
            if latency.is_finite() && latency >= 0.0 {
                stat.latency_weight += count;
                stat.latency_sum += latency * count;
            }
        }
        self.observed += obs.count;
    }

    /// The decayed weight of `class` (0.0 when untracked).
    #[inline]
    pub fn weight_of(&self, class: &str) -> f64 {
        self.classes.get(class).map_or(0.0, |s| s.weight)
    }

    /// Sum of all decayed weights, accumulated in class-name order so
    /// the total is deterministic for a given observation sequence.
    pub fn total_weight(&self) -> f64 {
        let mut total = 0.0;
        for stat in self.classes.values() {
            total += stat.weight;
        }
        total
    }

    /// `(class, decayed weight)` pairs in class-name order.
    pub fn weights(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.classes
            .iter()
            .map(|(name, s)| (name.as_str(), s.weight))
    }

    /// `(class, observed share)` pairs in class-name order; shares sum
    /// to 1.0 (empty iterator when the window has no weight).
    pub fn shares(&self) -> Vec<(String, f64)> {
        let total = self.total_weight();
        if total <= 0.0 {
            return Vec::new();
        }
        self.classes
            .iter()
            .map(|(name, s)| (name.clone(), s.weight / total))
            .collect()
    }

    /// Decayed mean latency of `class` in milliseconds, when any of its
    /// observations carried a hint.
    pub fn mean_latency_ms(&self, class: &str) -> Option<f64> {
        let stat = self.classes.get(class)?;
        if stat.latency_weight > 0.0 {
            Some(stat.latency_sum / stat.latency_weight)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(class: &str, count: u64) -> ClassObservation {
        ClassObservation::new(class, count)
    }

    #[test]
    fn ingest_accumulates_and_counts() {
        let mut w = StatsWindow::new(100.0);
        assert!(w.is_empty());
        w.ingest(&[obs("a", 10), obs("b", 30)]);
        assert_eq!(w.observed_queries(), 40);
        assert_eq!(w.len(), 2);
        assert!(w.weight_of("b") > w.weight_of("a"));
        assert_eq!(w.weight_of("missing"), 0.0);
        let shares = w.shares();
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_split_is_bit_identical() {
        let stream = [
            obs("a", 7),
            obs("b", 3),
            obs("a", 11).with_latency_ms(42.0),
            obs("c", 1),
            obs("b", 25),
        ];
        let mut whole = StatsWindow::new(20.0);
        whole.ingest(&stream);
        for split in 0..=stream.len() {
            let mut parts = StatsWindow::new(20.0);
            parts.ingest(&stream[..split]);
            parts.ingest(&stream[split..]);
            assert_eq!(parts, whole, "split at {split}");
        }
        let mut singles = StatsWindow::new(20.0);
        for o in &stream {
            singles.ingest(std::slice::from_ref(o));
        }
        assert_eq!(singles, whole);
    }

    #[test]
    fn decay_forgets_old_traffic() {
        let mut w = StatsWindow::new(50.0);
        w.ingest(&[obs("old", 100)]);
        let before = w.weight_of("old");
        // One half-life of other traffic halves the old class.
        w.ingest(&[obs("new", 50)]);
        let after = w.weight_of("old");
        assert!((after - before * 0.5).abs() < 1e-9, "{before} -> {after}");
        // Recency dominates: the window's shares now favor `new`.
        let shares = w.shares();
        let share = |name: &str| {
            shares
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0.0, |(_, s)| *s)
        };
        assert!(share("new") > share("old") * 0.9);
    }

    #[test]
    fn zero_counts_and_bad_latency_hints_are_inert() {
        let mut w = StatsWindow::new(10.0);
        w.ingest(&[obs("a", 5)]);
        let snapshot = w.clone();
        w.ingest(&[obs("a", 0), obs("phantom", 0)]);
        assert_eq!(w, snapshot, "zero-count observations must not decay");
        w.ingest(&[
            obs("a", 5).with_latency_ms(f64::NAN),
            obs("a", 5).with_latency_ms(-1.0),
        ]);
        assert_eq!(w.mean_latency_ms("a"), None);
    }

    #[test]
    fn latency_hints_average_with_decay() {
        let mut w = StatsWindow::new(1e12); // effectively no decay
        w.ingest(&[
            obs("a", 10).with_latency_ms(100.0),
            obs("a", 30).with_latency_ms(200.0),
        ]);
        let mean = w.mean_latency_ms("a").unwrap();
        assert!((mean - 175.0).abs() < 1e-6, "{mean}");
        assert_eq!(w.mean_latency_ms("b"), None);
    }

    #[test]
    #[should_panic(expected = "half-life")]
    fn non_positive_half_life_panics() {
        let _ = StatsWindow::new(0.0);
    }
}
