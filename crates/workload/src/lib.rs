//! Star-query workload model for WARLOCK.
//!
//! "The considered workload consists of a variety of multi-dimensional join
//! and aggregation (star) queries on the fact tables that refer to dimension
//! attributes. … Similar to APB-1, several weighted query classes can be
//! specified according to the subset of dimensions they access and their
//! relative share of the workload." (paper, §2/§3.1)
//!
//! This crate provides:
//!
//! * [`QueryClass`] — one star-query class: per-dimension predicates, each
//!   naming a hierarchy level and the number of selected member values,
//! * [`QueryMix`] — a weighted set of query classes with normalized shares,
//! * [`apb1_like_mix`] — the APB-1-like demonstration workload,
//! * [`WorkloadGenerator`] — a seeded random workload generator for stress
//!   and property tests,
//! * [`StatsWindow`] / [`mix_divergence`] / [`DriftDetector`] — observed
//!   traffic ingestion and drift detection for the resident-optimizer
//!   feedback loop.

//!
//! # Example
//!
//! ```
//! use warlock_workload::{DimensionPredicate, QueryClass, QueryMix};
//! use warlock_schema::{apb1_like_schema, Apb1Config};
//!
//! let schema = apb1_like_schema(Apb1Config::default()).unwrap();
//! // One month of one product class: selectivity (1/24)·(1/900).
//! let q = QueryClass::new("report")
//!     .with(2, DimensionPredicate::point(2))
//!     .with(0, DimensionPredicate::point(4));
//! let mix = QueryMix::builder().class(q, 1.0).build().unwrap();
//! mix.validate(&schema).unwrap();
//! let sel = mix.classes()[0].class.selectivity(&schema);
//! assert!((sel - 1.0 / 24.0 / 900.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

mod apb1;
mod drift;
mod generator;
mod mix;
mod query;
mod stats;

pub use apb1::apb1_like_mix;
pub use drift::{mix_divergence, DriftDetector, DriftState, DriftTransition};
pub use generator::{GeneratorConfig, WorkloadGenerator};
pub use mix::{QueryMix, QueryMixBuilder, WeightedClass};
pub use query::{DimensionPredicate, QueryClass, WorkloadError};
pub use stats::{ClassObservation, StatsWindow};
