//! Concrete query binding: from query *classes* to query *instances*.
//!
//! The analytical model works with expected values; the simulator needs
//! concrete queries. Binding samples the predicate values of a class
//! uniformly (the model's assumption) and maps them to the exact set of
//! accessed fragments under a layout.

use rand::seq::index::sample;
use rand::Rng;

use warlock_fragment::FragmentLayout;
use warlock_schema::{DimensionId, LevelId, StarSchema};
use warlock_workload::QueryClass;

/// One concrete query instance.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    /// The class this instance was drawn from.
    pub class_name: String,
    /// Exact accessed fragment indices (sorted, unique).
    pub fragments: Vec<u64>,
    /// The sampled predicate values per referenced dimension:
    /// `(dimension, level, member ordinals)`.
    pub bindings: Vec<(DimensionId, LevelId, Vec<u64>)>,
}

/// Upper bound on the accessed-fragment cross product a binding may
/// materialize; guards against misuse on huge layouts.
pub const MAX_BOUND_FRAGMENTS: usize = 1 << 22;

/// Binds `class` against `layout`, sampling predicate values with `rng`.
///
/// # Panics
///
/// Panics if the accessed-fragment cross product exceeds
/// [`MAX_BOUND_FRAGMENTS`].
pub fn bind_query<R: Rng + ?Sized>(
    schema: &StarSchema,
    layout: &FragmentLayout,
    class: &QueryClass,
    rng: &mut R,
) -> BoundQuery {
    // Sample concrete values for every referenced dimension.
    let mut bindings = Vec::with_capacity(class.dimensionality());
    for (&dim_id, pred) in class.predicates() {
        let dim = schema.dimension(dim_id).expect("validated class");
        let card = dim.cardinality(pred.level).expect("validated class") as usize;
        let mut values: Vec<u64> = sample(rng, card, pred.values as usize)
            .into_iter()
            .map(|v| v as u64)
            .collect();
        values.sort_unstable();
        bindings.push((dim_id, pred.level, values));
    }

    // Matched fragment coordinates per fragmentation attribute; ranged
    // attributes use their effective coordinate cardinality.
    let fragmentation = layout.fragmentation();
    let attrs = fragmentation.attributes();
    let mut per_dim_matched: Vec<Vec<u64>> = Vec::with_capacity(attrs.len());
    for (i, &attr) in attrs.iter().enumerate() {
        let dim = schema.dimension(attr.dimension).expect("validated layout");
        let frag_card = fragmentation.effective_cardinality(schema, i);
        let matched = match bindings.iter().find(|(d, _, _)| *d == attr.dimension) {
            None => (0..frag_card).collect(),
            Some((_, level, values)) => {
                let query_card = dim.cardinality(*level).expect("validated class");
                if query_card <= frag_card {
                    // Expand each coarse value to its coordinate range.
                    let per = frag_card / query_card;
                    let mut out = Vec::with_capacity(values.len() * per as usize);
                    for &v in values {
                        out.extend(v * per..(v + 1) * per);
                    }
                    out
                } else {
                    // Collapse each fine value to its covering coordinate.
                    let per = query_card / frag_card;
                    let mut out: Vec<u64> = values.iter().map(|&v| v / per).collect();
                    out.sort_unstable();
                    out.dedup();
                    out
                }
            }
        };
        per_dim_matched.push(matched);
    }

    // Cross product, bounded.
    let product: usize = per_dim_matched.iter().map(Vec::len).product();
    assert!(
        product <= MAX_BOUND_FRAGMENTS,
        "bound query would access {product} fragments"
    );
    let mut fragments = Vec::with_capacity(product);
    let mut coords = vec![0u64; per_dim_matched.len()];
    let mut counters = vec![0usize; per_dim_matched.len()];
    loop {
        for (i, &c) in counters.iter().enumerate() {
            coords[i] = per_dim_matched[i][c];
        }
        fragments.push(layout.index_of(&coords));
        // Odometer.
        let mut pos = counters.len();
        loop {
            if pos == 0 {
                fragments.sort_unstable();
                return BoundQuery {
                    class_name: class.name().to_owned(),
                    fragments,
                    bindings,
                };
            }
            pos -= 1;
            counters[pos] += 1;
            if counters[pos] < per_dim_matched[pos].len() {
                break;
            }
            counters[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use warlock_fragment::{Fragmentation, QueryMatch};
    use warlock_schema::{Dimension, FactTable};
    use warlock_workload::DimensionPredicate;

    fn schema() -> StarSchema {
        StarSchema::builder()
            .dimension(
                Dimension::builder("a")
                    .level("top", 4)
                    .level("mid", 16)
                    .level("bottom", 64)
                    .build()
                    .unwrap(),
            )
            .dimension(Dimension::builder("b").level("only", 8).build().unwrap())
            .fact(FactTable::builder("f").rows(100_000).build())
            .build()
            .unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn coarser_binding_expands_to_ranges() {
        let s = schema();
        let layout = FragmentLayout::new(&s, Fragmentation::from_pairs(&[(0, 1)]).unwrap(), 0);
        // Query at a.top (4) with 1 value; fragments at a.mid (16).
        let q = QueryClass::new("q").with(0, DimensionPredicate::point(0));
        let b = bind_query(&s, &layout, &q, &mut rng());
        assert_eq!(b.fragments.len(), 4); // 16/4 descendants
                                          // Contiguous range.
        for w in b.fragments.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn finer_binding_collapses_to_ancestors() {
        let s = schema();
        let layout = FragmentLayout::new(&s, Fragmentation::from_pairs(&[(0, 0)]).unwrap(), 0);
        // Query at a.bottom with 1 value → exactly 1 ancestor fragment.
        let q = QueryClass::new("q").with(0, DimensionPredicate::point(2));
        let b = bind_query(&s, &layout, &q, &mut rng());
        assert_eq!(b.fragments.len(), 1);
        let (_, _, values) = &b.bindings[0];
        assert_eq!(b.fragments[0], values[0] / 16);
    }

    #[test]
    fn unreferenced_fragmentation_dimension_matches_all() {
        let s = schema();
        let layout =
            FragmentLayout::new(&s, Fragmentation::from_pairs(&[(0, 0), (1, 0)]).unwrap(), 0);
        let q = QueryClass::new("q").with(0, DimensionPredicate::point(0));
        let b = bind_query(&s, &layout, &q, &mut rng());
        // 1 value of a.top × all 8 of b.
        assert_eq!(b.fragments.len(), 8);
    }

    #[test]
    fn bound_count_matches_expected_for_exact_cases() {
        // For coarser/equal references the expected count is exact, so
        // every binding must produce exactly that many fragments.
        let s = schema();
        let layout = FragmentLayout::new(&s, Fragmentation::from_pairs(&[(0, 1)]).unwrap(), 0);
        let q = QueryClass::new("q").with(0, DimensionPredicate::range(0, 2));
        let expected = QueryMatch::evaluate(&s, layout.fragmentation(), &q).expected_fragments();
        let mut r = rng();
        for _ in 0..20 {
            let b = bind_query(&s, &layout, &q, &mut r);
            assert_eq!(b.fragments.len() as f64, expected);
        }
    }

    #[test]
    fn finer_binding_count_averages_to_expectation() {
        let s = schema();
        let layout = FragmentLayout::new(&s, Fragmentation::from_pairs(&[(0, 0)]).unwrap(), 0);
        // 6 values at a.mid (16) against 4 fragments.
        let q = QueryClass::new("q").with(0, DimensionPredicate::range(1, 6));
        let expected = QueryMatch::evaluate(&s, layout.fragmentation(), &q).expected_fragments();
        let mut r = rng();
        let trials = 3000;
        let total: usize = (0..trials)
            .map(|_| bind_query(&s, &layout, &q, &mut r).fragments.len())
            .sum();
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - expected).abs() < 0.05,
            "sampled mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn fragments_sorted_unique_and_in_range() {
        let s = schema();
        let layout =
            FragmentLayout::new(&s, Fragmentation::from_pairs(&[(0, 2), (1, 0)]).unwrap(), 0);
        let q = QueryClass::new("q")
            .with(0, DimensionPredicate::range(1, 3))
            .with(1, DimensionPredicate::range(0, 2));
        let mut r = rng();
        for _ in 0..10 {
            let b = bind_query(&s, &layout, &q, &mut r);
            for w in b.fragments.windows(2) {
                assert!(w[0] < w[1], "not sorted/unique");
            }
            assert!(b.fragments.iter().all(|&f| f < layout.num_fragments()));
        }
    }

    #[test]
    fn baseline_layout_binds_single_fragment() {
        let s = schema();
        let layout = FragmentLayout::new(&s, Fragmentation::none(), 0);
        let q = QueryClass::new("q").with(1, DimensionPredicate::point(0));
        let b = bind_query(&s, &layout, &q, &mut rng());
        assert_eq!(b.fragments, vec![0]);
    }
}
