//! Event-driven multi-disk service simulation.
//!
//! Each disk is a FCFS server; a query is a batch of independent requests
//! (one per accessed fragment) issued at its arrival time. The simulator
//! supports an *open* mode (fixed arrival times) and a *closed* mode
//! (streams that issue their next query when the previous one completes),
//! which is how the multi-user throughput behaviour the paper's heuristic
//! optimizes for is measured.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One simulated query's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOutcome {
    /// Arrival time in milliseconds.
    pub arrival_ms: f64,
    /// Completion time in milliseconds.
    pub completion_ms: f64,
    /// Response time (`completion − arrival`).
    pub response_ms: f64,
}

/// Aggregate simulation results.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-query outcomes in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Busy milliseconds per disk.
    pub disk_busy_ms: Vec<f64>,
    /// Time of the last completion.
    pub makespan_ms: f64,
}

impl SimReport {
    /// Mean response time over all queries.
    pub fn mean_response_ms(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.response_ms).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Maximum response time.
    pub fn max_response_ms(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.response_ms)
            .fold(0.0, f64::max)
    }

    /// Completed queries per second of simulated time.
    pub fn throughput_per_s(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / (self.makespan_ms / 1000.0)
    }

    /// Mean disk utilization over the makespan.
    pub fn mean_utilization(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            return 0.0;
        }
        let total_busy: f64 = self.disk_busy_ms.iter().sum();
        total_busy / (self.makespan_ms * self.disk_busy_ms.len() as f64)
    }
}

/// A request: target disk and service duration.
type Request = (u32, f64);

#[derive(Debug)]
struct PendingQuery {
    arrival_ms: f64,
    requests: Vec<Request>,
}

/// Event-driven multi-disk FCFS simulator.
#[derive(Debug)]
pub struct DiskSimulator {
    num_disks: u32,
    queries: Vec<PendingQuery>,
}

/// Ordered event-queue key (min-heap over time, then sequence).
#[derive(Debug, PartialEq)]
struct EventKey(f64, u64);

impl Eq for EventKey {}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

#[derive(Debug)]
enum EventKind {
    Arrival { query: usize },
    RequestDone { disk: u32, query: usize },
}

impl DiskSimulator {
    /// Creates a simulator with `num_disks` identical disks.
    pub fn new(num_disks: u32) -> Self {
        assert!(num_disks > 0, "simulator needs at least one disk");
        Self {
            num_disks,
            queries: Vec::new(),
        }
    }

    /// Submits a query arriving at `arrival_ms` with the given requests.
    /// Returns the query's index into the report's outcome vector.
    pub fn submit(&mut self, arrival_ms: f64, requests: Vec<Request>) -> usize {
        assert!(
            requests
                .iter()
                .all(|&(d, ms)| d < self.num_disks && ms >= 0.0),
            "request on unknown disk or negative service time"
        );
        let id = self.queries.len();
        self.queries.push(PendingQuery {
            arrival_ms,
            requests,
        });
        id
    }

    /// Runs the open-system simulation to completion.
    pub fn run(self) -> SimReport {
        let num_disks = self.num_disks as usize;
        let n = self.queries.len();

        let mut events: BinaryHeap<Reverse<(EventKey, usize)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut kinds: Vec<EventKind> = Vec::new();
        let push = |events: &mut BinaryHeap<Reverse<(EventKey, usize)>>,
                    kinds: &mut Vec<EventKind>,
                    seq: &mut u64,
                    t: f64,
                    kind: EventKind| {
            kinds.push(kind);
            events.push(Reverse((EventKey(t, *seq), kinds.len() - 1)));
            *seq += 1;
        };

        for (q, pq) in self.queries.iter().enumerate() {
            push(
                &mut events,
                &mut kinds,
                &mut seq,
                pq.arrival_ms,
                EventKind::Arrival { query: q },
            );
        }

        let mut disk_queue: Vec<VecDeque<(usize, f64)>> = vec![VecDeque::new(); num_disks];
        let mut disk_busy_until: Vec<Option<f64>> = vec![None; num_disks];
        let mut disk_busy_ms = vec![0.0f64; num_disks];
        let mut outstanding: Vec<usize> = self.queries.iter().map(|q| q.requests.len()).collect();
        let mut completion = vec![f64::NAN; n];
        let mut makespan = 0.0f64;

        while let Some(Reverse((EventKey(t, _), kidx))) = events.pop() {
            match kinds[kidx] {
                EventKind::Arrival { query } => {
                    if self.queries[query].requests.is_empty() {
                        completion[query] = t;
                        makespan = makespan.max(t);
                        continue;
                    }
                    for &(disk, service) in &self.queries[query].requests {
                        let d = disk as usize;
                        if disk_busy_until[d].is_none() {
                            // Idle disk: start service immediately.
                            disk_busy_until[d] = Some(t + service);
                            disk_busy_ms[d] += service;
                            push(
                                &mut events,
                                &mut kinds,
                                &mut seq,
                                t + service,
                                EventKind::RequestDone { disk, query },
                            );
                        } else {
                            disk_queue[d].push_back((query, service));
                        }
                    }
                }
                EventKind::RequestDone { disk, query } => {
                    let d = disk as usize;
                    outstanding[query] -= 1;
                    if outstanding[query] == 0 {
                        completion[query] = t;
                        makespan = makespan.max(t);
                    }
                    // Start the next queued request, if any.
                    if let Some((next_query, service)) = disk_queue[d].pop_front() {
                        disk_busy_until[d] = Some(t + service);
                        disk_busy_ms[d] += service;
                        push(
                            &mut events,
                            &mut kinds,
                            &mut seq,
                            t + service,
                            EventKind::RequestDone {
                                disk,
                                query: next_query,
                            },
                        );
                    } else {
                        disk_busy_until[d] = None;
                    }
                }
            }
        }

        let outcomes = self
            .queries
            .iter()
            .zip(&completion)
            .map(|(q, &c)| QueryOutcome {
                arrival_ms: q.arrival_ms,
                completion_ms: c,
                response_ms: c - q.arrival_ms,
            })
            .collect();
        SimReport {
            outcomes,
            disk_busy_ms,
            makespan_ms: makespan,
        }
    }
}

/// Runs a *closed-system* simulation: each stream issues its queries
/// sequentially, the next one at the completion instant of the previous
/// (zero think time). Streams contend on the shared disks.
///
/// `streams[s]` is the ordered list of queries of stream `s`; each query is
/// its request batch. Outcomes are reported stream-major, query-minor.
pub fn run_closed(num_disks: u32, streams: &[Vec<Vec<Request>>]) -> SimReport {
    assert!(num_disks > 0, "simulator needs at least one disk");
    let num_disks_usize = num_disks as usize;

    // Global query ids: (stream, index) → flat id, stream-major.
    let mut offsets = Vec::with_capacity(streams.len());
    let mut total = 0usize;
    for s in streams {
        offsets.push(total);
        total += s.len();
    }
    let flat = |s: usize, i: usize| offsets[s] + i;

    let mut events: BinaryHeap<Reverse<(EventKey, usize)>> = BinaryHeap::new();
    let mut kinds: Vec<EventKind2> = Vec::new();
    let mut seq = 0u64;
    let push = |events: &mut BinaryHeap<Reverse<(EventKey, usize)>>,
                kinds: &mut Vec<EventKind2>,
                seq: &mut u64,
                t: f64,
                kind: EventKind2| {
        kinds.push(kind);
        events.push(Reverse((EventKey(t, *seq), kinds.len() - 1)));
        *seq += 1;
    };

    #[derive(Debug)]
    enum EventKind2 {
        Arrival {
            stream: usize,
            index: usize,
        },
        RequestDone {
            disk: u32,
            stream: usize,
            index: usize,
        },
    }

    for (s, queries) in streams.iter().enumerate() {
        if !queries.is_empty() {
            push(
                &mut events,
                &mut kinds,
                &mut seq,
                0.0,
                EventKind2::Arrival {
                    stream: s,
                    index: 0,
                },
            );
        }
    }

    let mut disk_queue: Vec<VecDeque<((usize, usize), f64)>> =
        vec![VecDeque::new(); num_disks_usize];
    let mut disk_idle: Vec<bool> = vec![true; num_disks_usize];
    let mut disk_busy_ms = vec![0.0f64; num_disks_usize];
    let mut outstanding = vec![0usize; total];
    let mut arrival = vec![0.0f64; total];
    let mut completion = vec![f64::NAN; total];
    let mut makespan = 0.0f64;

    while let Some(Reverse((EventKey(t, _), kidx))) = events.pop() {
        match kinds[kidx] {
            EventKind2::Arrival { stream, index } => {
                let id = flat(stream, index);
                arrival[id] = t;
                let requests = &streams[stream][index];
                if requests.is_empty() {
                    completion[id] = t;
                    makespan = makespan.max(t);
                    if index + 1 < streams[stream].len() {
                        push(
                            &mut events,
                            &mut kinds,
                            &mut seq,
                            t,
                            EventKind2::Arrival {
                                stream,
                                index: index + 1,
                            },
                        );
                    }
                    continue;
                }
                outstanding[id] = requests.len();
                for &(disk, service) in requests {
                    let d = disk as usize;
                    if disk_idle[d] {
                        disk_idle[d] = false;
                        disk_busy_ms[d] += service;
                        push(
                            &mut events,
                            &mut kinds,
                            &mut seq,
                            t + service,
                            EventKind2::RequestDone {
                                disk,
                                stream,
                                index,
                            },
                        );
                    } else {
                        disk_queue[d].push_back(((stream, index), service));
                    }
                }
            }
            EventKind2::RequestDone {
                disk,
                stream,
                index,
            } => {
                let d = disk as usize;
                let id = flat(stream, index);
                outstanding[id] -= 1;
                if outstanding[id] == 0 {
                    completion[id] = t;
                    makespan = makespan.max(t);
                    if index + 1 < streams[stream].len() {
                        push(
                            &mut events,
                            &mut kinds,
                            &mut seq,
                            t,
                            EventKind2::Arrival {
                                stream,
                                index: index + 1,
                            },
                        );
                    }
                }
                if let Some(((ns, ni), service)) = disk_queue[d].pop_front() {
                    disk_busy_ms[d] += service;
                    push(
                        &mut events,
                        &mut kinds,
                        &mut seq,
                        t + service,
                        EventKind2::RequestDone {
                            disk,
                            stream: ns,
                            index: ni,
                        },
                    );
                } else {
                    disk_idle[d] = true;
                }
            }
        }
    }

    let outcomes = (0..total)
        .map(|id| QueryOutcome {
            arrival_ms: arrival[id],
            completion_ms: completion[id],
            response_ms: completion[id] - arrival[id],
        })
        .collect();
    SimReport {
        outcomes,
        disk_busy_ms,
        makespan_ms: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} !~ {b}");
    }

    #[test]
    fn single_query_single_disk() {
        let mut sim = DiskSimulator::new(1);
        sim.submit(0.0, vec![(0, 10.0), (0, 5.0)]);
        let r = sim.run();
        // Serial on one disk: 15 ms.
        assert_close(r.outcomes[0].response_ms, 15.0, 1e-9);
        assert_close(r.makespan_ms, 15.0, 1e-9);
        assert_close(r.disk_busy_ms[0], 15.0, 1e-9);
        assert_close(r.mean_utilization(), 1.0, 1e-9);
    }

    #[test]
    fn parallel_requests_overlap() {
        let mut sim = DiskSimulator::new(4);
        sim.submit(0.0, vec![(0, 10.0), (1, 10.0), (2, 10.0), (3, 10.0)]);
        let r = sim.run();
        assert_close(r.outcomes[0].response_ms, 10.0, 1e-9);
    }

    #[test]
    fn fcfs_queueing_delays_later_arrivals() {
        let mut sim = DiskSimulator::new(1);
        sim.submit(0.0, vec![(0, 10.0)]);
        sim.submit(2.0, vec![(0, 10.0)]);
        let r = sim.run();
        assert_close(r.outcomes[0].response_ms, 10.0, 1e-9);
        // Second waits 8 ms, then serves 10 → response 18.
        assert_close(r.outcomes[1].response_ms, 18.0, 1e-9);
        assert_close(r.makespan_ms, 20.0, 1e-9);
    }

    #[test]
    fn idle_gaps_are_not_busy() {
        let mut sim = DiskSimulator::new(1);
        sim.submit(0.0, vec![(0, 5.0)]);
        sim.submit(100.0, vec![(0, 5.0)]);
        let r = sim.run();
        assert_close(r.disk_busy_ms[0], 10.0, 1e-9);
        assert_close(r.makespan_ms, 105.0, 1e-9);
        assert!(r.mean_utilization() < 0.2);
    }

    #[test]
    fn empty_query_completes_instantly() {
        let mut sim = DiskSimulator::new(2);
        sim.submit(7.0, vec![]);
        let r = sim.run();
        assert_close(r.outcomes[0].response_ms, 0.0, 1e-9);
        assert_close(r.outcomes[0].completion_ms, 7.0, 1e-9);
    }

    #[test]
    fn declustering_shortens_response() {
        // The same 40 ms of work: on one disk vs spread over 4.
        let mut clustered = DiskSimulator::new(4);
        clustered.submit(0.0, vec![(0, 10.0); 4]);
        let rc = clustered.run();

        let mut declustered = DiskSimulator::new(4);
        declustered.submit(0.0, vec![(0, 10.0), (1, 10.0), (2, 10.0), (3, 10.0)]);
        let rd = declustered.run();

        assert_close(rc.outcomes[0].response_ms, 40.0, 1e-9);
        assert_close(rd.outcomes[0].response_ms, 10.0, 1e-9);
    }

    #[test]
    fn contention_inflates_response_under_load() {
        // 8 identical declustered queries at once: each disk serves 8
        // requests; last finisher sees 8× the single-query response.
        let mut sim = DiskSimulator::new(4);
        for _ in 0..8 {
            sim.submit(0.0, vec![(0, 10.0), (1, 10.0), (2, 10.0), (3, 10.0)]);
        }
        let r = sim.run();
        assert_close(r.max_response_ms(), 80.0, 1e-9);
        assert_close(r.makespan_ms, 80.0, 1e-9);
        assert_close(r.mean_utilization(), 1.0, 1e-9);
        // Throughput: 8 queries in 0.08 s.
        assert_close(r.throughput_per_s(), 100.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "unknown disk")]
    fn submit_validates_disks() {
        let mut sim = DiskSimulator::new(2);
        sim.submit(0.0, vec![(2, 1.0)]);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two queries arriving at the same instant are served in
        // submission order.
        let mut sim = DiskSimulator::new(1);
        sim.submit(0.0, vec![(0, 10.0)]);
        sim.submit(0.0, vec![(0, 10.0)]);
        let r = sim.run();
        assert_close(r.outcomes[0].response_ms, 10.0, 1e-9);
        assert_close(r.outcomes[1].response_ms, 20.0, 1e-9);
    }

    #[test]
    fn closed_single_stream_is_sequential() {
        let streams = vec![vec![vec![(0u32, 10.0)], vec![(0u32, 5.0)]]];
        let r = run_closed(1, &streams);
        assert_close(r.outcomes[0].response_ms, 10.0, 1e-9);
        assert_close(r.outcomes[1].arrival_ms, 10.0, 1e-9);
        assert_close(r.outcomes[1].response_ms, 5.0, 1e-9);
        assert_close(r.makespan_ms, 15.0, 1e-9);
    }

    #[test]
    fn closed_streams_contend() {
        // Two streams of two 10 ms single-disk queries on one disk:
        // perfect interleaving, makespan 40 ms, four completions.
        let q = vec![vec![(0u32, 10.0)], vec![(0u32, 10.0)]];
        let r = run_closed(1, &[q.clone(), q]);
        assert_eq!(r.outcomes.len(), 4);
        assert_close(r.makespan_ms, 40.0, 1e-9);
        assert_close(r.mean_utilization(), 1.0, 1e-9);
        // Each query's response includes the other stream's interleaved
        // service: stream 0 query 0 finishes at 10, stream 1 query 0 at 20.
        assert_close(r.outcomes[0].response_ms, 10.0, 1e-9);
        assert_close(r.outcomes[2].response_ms, 20.0, 1e-9);
    }

    #[test]
    fn closed_multi_disk_parallel_streams() {
        // Two streams on two disks, disjoint: no contention at all.
        let s0 = vec![vec![(0u32, 10.0)], vec![(0u32, 10.0)]];
        let s1 = vec![vec![(1u32, 10.0)], vec![(1u32, 10.0)]];
        let r = run_closed(2, &[s0, s1]);
        assert_close(r.makespan_ms, 20.0, 1e-9);
        for o in &r.outcomes {
            assert_close(o.response_ms, 10.0, 1e-9);
        }
    }

    #[test]
    fn closed_empty_queries_chain() {
        let streams = vec![vec![vec![], vec![(0u32, 5.0)]]];
        let r = run_closed(1, &streams);
        assert_close(r.outcomes[0].response_ms, 0.0, 1e-9);
        assert_close(r.outcomes[1].response_ms, 5.0, 1e-9);
    }
}
