//! Materialized fragment populations.

use warlock_fragment::FragmentLayout;
use warlock_schema::StarSchema;

use crate::SyntheticFact;

/// The rows of a synthetic fact table routed into the fragments of one
/// layout — the ground truth the analytical estimates are validated
/// against, and the row populations real bitmap indexes are built from.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializedWarehouse {
    /// `rows_of[f]` = row ids (into the [`SyntheticFact`]) of fragment `f`.
    rows_of: Vec<Vec<u32>>,
    num_fragments: u64,
}

impl MaterializedWarehouse {
    /// Routes every row of `data` to its fragment under `layout`.
    ///
    /// A row's fragment coordinate on each fragmentation attribute is the
    /// ancestor (at the fragmentation level) of the row's bottom-level
    /// member — exactly the MDHF assignment rule.
    ///
    /// # Panics
    ///
    /// Panics if the layout has more than 2³² fragments (materialization is
    /// a small-scale validation tool; the thresholds layer caps real
    /// candidates far below this).
    pub fn build(schema: &StarSchema, layout: &FragmentLayout, data: &SyntheticFact) -> Self {
        let num_fragments = layout.num_fragments();
        assert!(num_fragments <= u32::MAX as u64, "too many fragments");
        let fragmentation = layout.fragmentation();
        let attrs = fragmentation.attributes();
        // Precompute bottom→fragment-coordinate divisors per attribute
        // (effective cardinality folds range sizes in).
        let divisors: Vec<(usize, u64)> = attrs
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let dim = schema.dimension(r.dimension).expect("validated layout");
                let per =
                    dim.bottom().cardinality() / fragmentation.effective_cardinality(schema, i);
                (r.dimension.index(), per)
            })
            .collect();
        let mut rows_of: Vec<Vec<u32>> = vec![Vec::new(); num_fragments as usize];
        let mut coords = vec![0u64; attrs.len()];
        for row in 0..data.rows() {
            for (i, &(dim_index, per)) in divisors.iter().enumerate() {
                coords[i] = data.column(dim_index)[row] / per;
            }
            let f = layout.index_of(&coords);
            rows_of[f as usize].push(row as u32);
        }
        Self {
            rows_of,
            num_fragments,
        }
    }

    /// Number of fragments.
    #[inline]
    pub fn num_fragments(&self) -> u64 {
        self.num_fragments
    }

    /// Row ids of fragment `f`.
    #[inline]
    pub fn rows_of(&self, f: u64) -> &[u32] {
        &self.rows_of[f as usize]
    }

    /// Row counts per fragment.
    pub fn fragment_row_counts(&self) -> Vec<u64> {
        self.rows_of.iter().map(|r| r.len() as u64).collect()
    }

    /// Total routed rows (= the dataset's row count).
    pub fn total_rows(&self) -> u64 {
        self.rows_of.iter().map(|r| r.len() as u64).sum()
    }

    /// Extracts the column of bottom-member ordinals of dimension `d`
    /// restricted to fragment `f` — the input for building that fragment's
    /// bitmap indexes.
    pub fn fragment_column(&self, data: &SyntheticFact, f: u64, d: usize) -> Vec<u64> {
        self.rows_of[f as usize]
            .iter()
            .map(|&row| data.column(d)[row as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_fragment::{Fragmentation, SkewModelExt};
    use warlock_schema::{Dimension, FactTable};

    fn schema() -> StarSchema {
        StarSchema::builder()
            .dimension(
                Dimension::builder("a")
                    .level("top", 4)
                    .level("bottom", 16)
                    .build()
                    .unwrap(),
            )
            .dimension(Dimension::builder("b").level("only", 8).build().unwrap())
            .fact(FactTable::builder("f").rows(10_000).build())
            .build()
            .unwrap()
    }

    #[test]
    fn routing_conserves_rows() {
        let s = schema();
        let data = SyntheticFact::generate(&s, &s.uniform_skew_model(), 10_000, 1);
        let layout =
            FragmentLayout::new(&s, Fragmentation::from_pairs(&[(0, 0), (1, 0)]).unwrap(), 0);
        let w = MaterializedWarehouse::build(&s, &layout, &data);
        assert_eq!(w.num_fragments(), 32);
        assert_eq!(w.total_rows(), 10_000);
    }

    #[test]
    fn routing_respects_hierarchy() {
        let s = schema();
        let data = SyntheticFact::generate(&s, &s.uniform_skew_model(), 5_000, 2);
        // Fragment by a.top (4): bottom members 0..4 → frag 0, 4..8 → 1, …
        let layout = FragmentLayout::new(&s, Fragmentation::from_pairs(&[(0, 0)]).unwrap(), 0);
        let w = MaterializedWarehouse::build(&s, &layout, &data);
        for f in 0..4u64 {
            for &row in w.rows_of(f) {
                let member = data.column(0)[row as usize];
                assert_eq!(member / 4, f, "row {row} misrouted");
            }
        }
    }

    #[test]
    fn baseline_layout_routes_everything_to_one_fragment() {
        let s = schema();
        let data = SyntheticFact::generate(&s, &s.uniform_skew_model(), 1_000, 3);
        let layout = FragmentLayout::new(&s, Fragmentation::none(), 0);
        let w = MaterializedWarehouse::build(&s, &layout, &data);
        assert_eq!(w.num_fragments(), 1);
        assert_eq!(w.rows_of(0).len(), 1000);
    }

    #[test]
    fn fragment_row_counts_match_expectation_roughly() {
        let s = schema();
        let data = SyntheticFact::generate(&s, &s.uniform_skew_model(), 32_000, 4);
        let layout = FragmentLayout::new(&s, Fragmentation::from_pairs(&[(1, 0)]).unwrap(), 0);
        let w = MaterializedWarehouse::build(&s, &layout, &data);
        let counts = w.fragment_row_counts();
        assert_eq!(counts.len(), 8);
        for &c in &counts {
            let expected = 4000.0;
            assert!((c as f64 - expected).abs() / expected < 0.15, "count {c}");
        }
    }

    #[test]
    fn fragment_columns_extract_members() {
        let s = schema();
        let data = SyntheticFact::generate(&s, &s.uniform_skew_model(), 2_000, 5);
        let layout = FragmentLayout::new(&s, Fragmentation::from_pairs(&[(0, 0)]).unwrap(), 0);
        let w = MaterializedWarehouse::build(&s, &layout, &data);
        let col = w.fragment_column(&data, 2, 0);
        assert_eq!(col.len(), w.rows_of(2).len());
        // All members of fragment 2 descend from ancestor 2.
        assert!(col.iter().all(|&m| m / 4 == 2));
    }
}
