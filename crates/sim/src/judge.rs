//! Head-to-head allocation-policy judging.
//!
//! The advisor's analytical model predicts response times, but the
//! question "which *allocation policy* should this workload use?" is
//! answered here empirically: the scenario's query mix is replayed
//! through the event-driven disk simulator ([`crate::run_closed`])
//! once per candidate policy, on the placement that policy produced,
//! and the policies are ranked by measured makespan.
//!
//! Each entrant describes its placement as per-class disk loads — how
//! one representative query of every class spreads its device time
//! over the disks under that entrant's allocation (exactly the
//! analysis layer's `DiskAccessProfile`). The judge builds identical
//! closed multi-stream schedules for every entrant (class frequencies
//! proportional to mix shares, deterministic error-diffusion ordering,
//! per-stream rotation so streams interleave rather than march in
//! lockstep) and replays them with zero think time.
//!
//! Everything is deterministic: same entrants ⇒ same schedules ⇒
//! byte-identical verdicts; ties in makespan preserve the caller's
//! entrant order, so callers list the simpler/incumbent policy first
//! and a challenger must *strictly* win to be ranked ahead.

use warlock_alloc::Allocation;

use crate::run_closed;

/// One query class's device-time distribution under some allocation:
/// its mix share and its representative query's busy ms per disk.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassLoad {
    /// Relative frequency of the class in the mix (need not be
    /// normalized; the judge normalizes over the entrant's classes).
    pub share: f64,
    /// Busy milliseconds per disk of one representative query.
    pub per_disk_ms: Vec<f64>,
}

impl ClassLoad {
    /// Builds the load of a class that spends `ms` device time on each
    /// `(fragment, ms)` pair under `allocation`.
    ///
    /// # Panics
    ///
    /// Panics if a fragment index is out of range.
    pub fn from_allocation(allocation: &Allocation, accessed: &[(usize, f64)], share: f64) -> Self {
        let mut per_disk_ms = vec![0.0; allocation.num_disks() as usize];
        for &(f, ms) in accessed {
            per_disk_ms[allocation.disk_of(f) as usize] += ms;
        }
        Self { share, per_disk_ms }
    }
}

/// One policy under judgment: a name and the per-class loads its
/// allocation induces.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEntrant {
    /// Policy name, echoed into the verdict.
    pub name: String,
    /// Per-class loads; every entrant must describe the same classes
    /// in the same order (the schedule is built from the first
    /// entrant's shares so all entrants replay the identical mix).
    pub classes: Vec<ClassLoad>,
}

/// The judged outcome of one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyVerdict {
    /// Policy name.
    pub name: String,
    /// Time the last stream finished (the ranking key).
    pub makespan_ms: f64,
    /// Max disk busy time over mean (1.0 = perfectly balanced).
    pub busy_imbalance: f64,
    /// Mean query response time over the replay.
    pub mean_response_ms: f64,
    /// Completed queries per second over the makespan.
    pub throughput_per_s: f64,
}

/// Replays the mix under every entrant and returns verdicts ranked by
/// makespan (ascending; ties keep the caller's entrant order).
///
/// `streams` concurrent zero-think-time clients each issue
/// `rounds × classes` queries; class frequencies follow the shares of
/// the first entrant (all entrants must agree on the class list).
///
/// # Panics
///
/// Panics if `num_disks` or `streams` is zero, or an entrant's class
/// count or disk arity disagrees with the first entrant's.
pub fn judge_head_to_head(
    num_disks: u32,
    entrants: &[PolicyEntrant],
    streams: usize,
    rounds: usize,
) -> Vec<PolicyVerdict> {
    assert!(num_disks > 0, "judge needs at least one disk");
    assert!(streams > 0, "judge needs at least one stream");
    let Some(first) = entrants.first() else {
        return Vec::new();
    };
    for e in entrants {
        assert_eq!(
            e.classes.len(),
            first.classes.len(),
            "entrant `{}` describes a different class list",
            e.name
        );
        for c in &e.classes {
            assert_eq!(
                c.per_disk_ms.len(),
                num_disks as usize,
                "entrant `{}` has a class with wrong disk arity",
                e.name
            );
        }
    }

    let schedule = class_schedule(
        &first.classes.iter().map(|c| c.share).collect::<Vec<_>>(),
        rounds,
    );

    let mut verdicts: Vec<PolicyVerdict> = entrants
        .iter()
        .map(|entrant| {
            let queries: Vec<Vec<(u32, f64)>> = entrant
                .classes
                .iter()
                .map(|c| {
                    c.per_disk_ms
                        .iter()
                        .enumerate()
                        .filter(|&(_, &ms)| ms > 0.0)
                        .map(|(d, &ms)| (d as u32, ms))
                        .collect()
                })
                .collect();
            // Stream s starts the shared schedule at offset s so the
            // streams interleave classes instead of marching in
            // lockstep on the same disks.
            let stream_plans: Vec<Vec<Vec<(u32, f64)>>> = (0..streams)
                .map(|s| {
                    schedule
                        .iter()
                        .cycle()
                        .skip(s % schedule.len().max(1))
                        .take(schedule.len())
                        .filter(|&&c| !queries[c].is_empty())
                        .map(|&c| queries[c].clone())
                        .collect()
                })
                .collect();
            let report = run_closed(num_disks, &stream_plans);
            let busy_imbalance = imbalance(&report.disk_busy_ms);
            PolicyVerdict {
                name: entrant.name.clone(),
                makespan_ms: report.makespan_ms,
                busy_imbalance,
                mean_response_ms: report.mean_response_ms(),
                throughput_per_s: report.throughput_per_s(),
            }
        })
        .collect();
    // Stable sort: equal makespans keep the caller's entrant order.
    verdicts.sort_by(|a, b| a.makespan_ms.total_cmp(&b.makespan_ms));
    verdicts
}

/// Deterministic weighted class sequence of length `rounds × classes`
/// via largest-remainder error diffusion: each step picks the class
/// with the largest accumulated deficit (ties: lowest index), so class
/// frequencies track the shares at every prefix.
fn class_schedule(shares: &[f64], rounds: usize) -> Vec<usize> {
    let n = shares.len();
    if n == 0 {
        return Vec::new();
    }
    let total: f64 = shares.iter().map(|s| s.max(0.0)).sum();
    let norm: Vec<f64> = if total > 0.0 {
        shares.iter().map(|s| s.max(0.0) / total).collect()
    } else {
        vec![1.0 / n as f64; n]
    };
    let len = rounds.max(1) * n;
    let mut deficit = vec![0.0f64; n];
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        for (d, &s) in deficit.iter_mut().zip(&norm) {
            *d += s;
        }
        let pick = (0..n)
            .max_by(|&a, &b| deficit[a].total_cmp(&deficit[b]).then(b.cmp(&a)))
            .expect("non-empty shares");
        deficit[pick] -= 1.0;
        out.push(pick);
    }
    out
}

/// Max over mean of a non-negative load vector (1.0 when all zero).
fn imbalance(loads: &[f64]) -> f64 {
    let total: f64 = loads.iter().sum();
    if loads.is_empty() || total <= 0.0 {
        return 1.0;
    }
    let mean = total / loads.len() as f64;
    let max = loads.iter().copied().fold(0.0, f64::max);
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_alloc::{greedy_by_size, partition_coaccess, round_robin, CoAccessGraph};

    /// The adversarial correlated mix: 8 fragments on 4 disks, classes
    /// reading pairs (0,4)…(3,7) with shares 0.4/0.3/0.2/0.1, sizes
    /// rigged so greedy-by-size and round-robin co-locate every pair.
    fn correlated_fixture() -> (Vec<u64>, Vec<(Vec<usize>, f64)>) {
        let sizes = vec![130u64, 120, 110, 100, 70, 80, 90, 100];
        let classes = vec![
            (vec![0usize, 4], 0.4),
            (vec![1, 5], 0.3),
            (vec![2, 6], 0.2),
            (vec![3, 7], 0.1),
        ];
        (sizes, classes)
    }

    fn entrant(
        name: &str,
        allocation: &Allocation,
        classes: &[(Vec<usize>, f64)],
        per_fragment_ms: f64,
    ) -> PolicyEntrant {
        PolicyEntrant {
            name: name.to_owned(),
            classes: classes
                .iter()
                .map(|(frags, share)| {
                    let accessed: Vec<(usize, f64)> =
                        frags.iter().map(|&f| (f, per_fragment_ms)).collect();
                    ClassLoad::from_allocation(allocation, &accessed, *share)
                })
                .collect(),
        }
    }

    #[test]
    fn graph_strictly_beats_greedy_and_round_robin_on_correlated_mix() {
        let (sizes, classes) = correlated_fixture();
        let mut b = CoAccessGraph::builder(sizes.clone());
        for (frags, share) in &classes {
            let group: Vec<u32> = frags.iter().map(|&f| f as u32).collect();
            b.add_group(&group, *share);
            for &f in &group {
                b.add_heat(f, share * 10.0);
            }
        }
        let graph_alloc = partition_coaccess(&b.build(), 4, 0);
        let greedy_alloc = greedy_by_size(sizes.clone(), 4);
        let rr_alloc = round_robin(sizes, 4);

        let entrants = vec![
            entrant("round_robin", &rr_alloc, &classes, 10.0),
            entrant("greedy", &greedy_alloc, &classes, 10.0),
            entrant("graph", &graph_alloc, &classes, 10.0),
        ];
        let verdicts = judge_head_to_head(4, &entrants, 4, 4);
        assert_eq!(verdicts[0].name, "graph", "graph must rank first");
        let by_name = |n: &str| verdicts.iter().find(|v| v.name == n).unwrap();
        assert!(
            by_name("graph").makespan_ms < by_name("greedy").makespan_ms,
            "graph {} !< greedy {}",
            by_name("graph").makespan_ms,
            by_name("greedy").makespan_ms
        );
        assert!(
            by_name("graph").makespan_ms < by_name("round_robin").makespan_ms,
            "graph {} !< round-robin {}",
            by_name("graph").makespan_ms,
            by_name("round_robin").makespan_ms
        );
        // Scattering the hot pairs also balances the busy time.
        assert!(by_name("graph").busy_imbalance <= by_name("greedy").busy_imbalance);
    }

    #[test]
    fn uniform_mix_ties_keep_entrant_order() {
        // Disjoint single-fragment classes: no co-access signal, the
        // graph policy degrades to greedy ⇒ identical placement ⇒
        // identical makespan ⇒ the incumbent (listed first) stays first.
        let sizes = vec![100u64; 8];
        let classes: Vec<(Vec<usize>, f64)> = (0..8).map(|f| (vec![f], 0.125)).collect();
        let b = CoAccessGraph::builder(sizes.clone());
        let graph_alloc = partition_coaccess(&b.build(), 4, 0);
        let greedy_alloc = greedy_by_size(sizes, 4);
        assert_eq!(graph_alloc.placements(), greedy_alloc.placements());

        let entrants = vec![
            entrant("greedy", &greedy_alloc, &classes, 10.0),
            entrant("graph", &graph_alloc, &classes, 10.0),
        ];
        let verdicts = judge_head_to_head(4, &entrants, 4, 4);
        assert_eq!(verdicts[0].name, "greedy", "tie must keep entrant order");
        assert_eq!(verdicts[0].makespan_ms, verdicts[1].makespan_ms);
    }

    #[test]
    fn verdicts_are_deterministic() {
        let (sizes, classes) = correlated_fixture();
        let greedy_alloc = greedy_by_size(sizes.clone(), 4);
        let rr_alloc = round_robin(sizes, 4);
        let entrants = vec![
            entrant("rr", &rr_alloc, &classes, 7.5),
            entrant("greedy", &greedy_alloc, &classes, 7.5),
        ];
        let a = judge_head_to_head(4, &entrants, 3, 5);
        let b = judge_head_to_head(4, &entrants, 3, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_tracks_shares() {
        let seq = class_schedule(&[0.5, 0.25, 0.25], 4);
        assert_eq!(seq.len(), 12);
        assert_eq!(seq.iter().filter(|&&c| c == 0).count(), 6);
        assert_eq!(seq.iter().filter(|&&c| c == 1).count(), 3);
        assert_eq!(seq.iter().filter(|&&c| c == 2).count(), 3);
        // Zero/negative shares are clamped; all-zero falls back to uniform.
        let uniform = class_schedule(&[0.0, 0.0], 2);
        assert_eq!(uniform.iter().filter(|&&c| c == 0).count(), 2);
    }

    #[test]
    fn empty_entrants_yield_no_verdicts() {
        assert!(judge_head_to_head(4, &[], 2, 2).is_empty());
    }
}
