//! Analytical-model validation against the event-driven simulator.
//!
//! Experiment V1: the analytical response-time estimates of the prediction
//! layer rest on two approximations — expected fragment counts instead of
//! sampled ones, and the "round-robin spreads accessed fragments evenly"
//! declustering assumption instead of the true placement. This module
//! quantifies both by simulating bound query instances on the actual
//! allocation and comparing against the analytical numbers.

use rand::rngs::StdRng;
use rand::SeedableRng;

use warlock_alloc::Allocation;
use warlock_bitmap::BitmapScheme;
use warlock_cost::CostModel;
use warlock_fragment::FragmentLayout;
use warlock_schema::StarSchema;
use warlock_storage::SystemConfig;
use warlock_workload::QueryMix;

use crate::{bind_query, run_closed, DiskSimulator};

/// One class's analytical-vs-simulated comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Query class name.
    pub class_name: String,
    /// Analytical response-time estimate (declustering approximation).
    pub analytic_ms: f64,
    /// Mean simulated single-query response over the trials.
    pub simulated_ms: f64,
    /// `(simulated − analytic) / analytic`.
    pub relative_error: f64,
    /// Trials simulated.
    pub trials: usize,
}

/// Simulates single-query (no contention) executions of every class in
/// `mix` against `layout` placed by `allocation`, and compares the mean
/// simulated response with the analytical estimate.
///
/// Per-fragment service time comes from the same cost model the advisor
/// uses, so the comparison isolates exactly the two approximations named
/// in the module docs.
#[allow(clippy::too_many_arguments)]
pub fn compare_single_queries(
    schema: &StarSchema,
    system: &SystemConfig,
    scheme: &BitmapScheme,
    mix: &QueryMix,
    layout: &FragmentLayout,
    allocation: &Allocation,
    trials: usize,
    seed: u64,
) -> Vec<ComparisonRow> {
    assert_eq!(
        allocation.num_fragments() as u64,
        layout.num_fragments(),
        "allocation must cover the layout"
    );
    let model = CostModel::new(schema, system, scheme, mix);
    let candidate = model.evaluate_layout(layout);
    let mut rng = StdRng::seed_from_u64(seed);
    let processors = system.architecture.total_processors();
    let overhead = system.architecture.overhead_factor();

    let mut rows = Vec::with_capacity(mix.len());
    for ((class, _), qc) in mix.iter().zip(&candidate.per_query) {
        let mut total = 0.0;
        for _ in 0..trials {
            let bound = bind_query(schema, layout, class, &mut rng);
            let mut sim = DiskSimulator::new(system.num_disks);
            let requests: Vec<(u32, f64)> = bound
                .fragments
                .iter()
                .map(|&f| (allocation.disk_of(f as usize), qc.per_fragment_ms))
                .collect();
            sim.submit(0.0, requests);
            let report = sim.run();
            // The simulator models disks only; apply the same processor
            // cap and architecture overhead the analytical estimate uses.
            let io_ms = report.outcomes[0].response_ms;
            let busy: f64 = report.disk_busy_ms.iter().sum();
            let response = io_ms.max(busy / f64::from(processors.max(1))) * overhead.max(1.0);
            total += response;
        }
        let simulated_ms = total / trials.max(1) as f64;
        let analytic_ms = qc.response_ms;
        rows.push(ComparisonRow {
            class_name: class.name().to_owned(),
            analytic_ms,
            simulated_ms,
            relative_error: if analytic_ms > 0.0 {
                (simulated_ms - analytic_ms) / analytic_ms
            } else {
                0.0
            },
            trials,
        });
    }
    rows
}

/// Aggregate results of a closed multi-stream workload simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadStats {
    /// Number of concurrent streams.
    pub streams: usize,
    /// Queries executed in total.
    pub queries: usize,
    /// Mean response time over all executed queries.
    pub mean_response_ms: f64,
    /// Completed queries per second.
    pub throughput_per_s: f64,
    /// Mean disk utilization.
    pub utilization: f64,
}

/// Runs a closed multi-stream workload: `streams` parallel clients, each
/// executing `queries_per_stream` queries drawn round-robin from the mix's
/// classes (weighted draws would add sampling noise to comparisons).
///
/// This is the multi-user scenario behind the paper's heuristic: "a simple
/// heuristic preferring fragmentations reducing overall I/O requirements,
/// which is also advantageous with respect to multi-user query
/// processing."
#[allow(clippy::too_many_arguments)]
pub fn closed_workload(
    schema: &StarSchema,
    system: &SystemConfig,
    scheme: &BitmapScheme,
    mix: &QueryMix,
    layout: &FragmentLayout,
    allocation: &Allocation,
    streams: usize,
    queries_per_stream: usize,
    seed: u64,
) -> WorkloadStats {
    let model = CostModel::new(schema, system, scheme, mix);
    let candidate = model.evaluate_layout(layout);
    let classes: Vec<_> = mix.iter().map(|(c, _)| c).collect();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut stream_batches: Vec<Vec<Vec<(u32, f64)>>> = Vec::with_capacity(streams);
    for s in 0..streams {
        let mut queries = Vec::with_capacity(queries_per_stream);
        for q in 0..queries_per_stream {
            let idx = (s + q * streams) % classes.len();
            let class = classes[idx];
            let per_fragment_ms = candidate.per_query[idx].per_fragment_ms;
            let bound = bind_query(schema, layout, class, &mut rng);
            queries.push(
                bound
                    .fragments
                    .iter()
                    .map(|&f| (allocation.disk_of(f as usize), per_fragment_ms))
                    .collect(),
            );
        }
        stream_batches.push(queries);
    }

    let report = run_closed(system.num_disks, &stream_batches);
    WorkloadStats {
        streams,
        queries: report.outcomes.len(),
        mean_response_ms: report.mean_response_ms(),
        throughput_per_s: report.throughput_per_s(),
        utilization: report.mean_utilization(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_alloc::round_robin;
    use warlock_bitmap::SchemeConfig;
    use warlock_fragment::Fragmentation;
    use warlock_schema::{Dimension, FactTable};
    use warlock_workload::{DimensionPredicate, QueryClass};

    fn schema() -> StarSchema {
        StarSchema::builder()
            .dimension(
                Dimension::builder("a")
                    .level("top", 8)
                    .level("bottom", 64)
                    .build()
                    .unwrap(),
            )
            .dimension(Dimension::builder("b").level("only", 12).build().unwrap())
            .fact(
                FactTable::builder("f")
                    .measure("m", 8)
                    .rows(2_000_000)
                    .build(),
            )
            .build()
            .unwrap()
    }

    fn fixture() -> (StarSchema, SystemConfig, QueryMix) {
        let s = schema();
        let mix = QueryMix::builder()
            .class(
                QueryClass::new("top_point").with(0, DimensionPredicate::point(0)),
                2.0,
            )
            .class(
                QueryClass::new("b_point").with(1, DimensionPredicate::point(0)),
                1.0,
            )
            .class(
                QueryClass::new("both")
                    .with(0, DimensionPredicate::point(0))
                    .with(1, DimensionPredicate::point(0)),
                1.0,
            )
            .build()
            .unwrap();
        // 7 disks: coprime to both fragmentation strides (1 and 12), so
        // round-robin placement actually achieves the even spread the
        // analytical declustering approximation assumes.
        let system = SystemConfig::default_2001(7);
        (s, system, mix)
    }

    #[test]
    fn analytic_and_simulated_agree_for_exact_matchings() {
        let (s, system, mix) = fixture();
        let scheme = BitmapScheme::derive(&s, &mix, SchemeConfig::default());
        let frag = Fragmentation::from_pairs(&[(0, 0), (1, 0)]).unwrap(); // 96 fragments
        let layout = FragmentLayout::new(&s, frag, 0);
        let sizes = vec![1u64; layout.num_fragments() as usize];
        let allocation = round_robin(sizes, system.num_disks);
        let rows = compare_single_queries(&s, &system, &scheme, &mix, &layout, &allocation, 5, 42);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            // Exact matchings + round-robin placement: the declustering
            // approximation should be within 30 % here.
            assert!(
                row.relative_error.abs() < 0.3,
                "{}: analytic {} vs simulated {}",
                row.class_name,
                row.analytic_ms,
                row.simulated_ms
            );
        }
    }

    #[test]
    fn stride_collision_degrades_declustering() {
        // With 8 disks and an outer-dimension stride of 12 (gcd 4), a
        // query matching one inner value lands its 8 fragments on only
        // 2 disks — the simulator exposes what the analytical
        // approximation misses. This is why the disk count should be
        // chosen coprime to the fragmentation radices.
        let (s, _, mix) = fixture();
        let system = SystemConfig::default_2001(8);
        let scheme = BitmapScheme::derive(&s, &mix, SchemeConfig::default());
        let layout =
            FragmentLayout::new(&s, Fragmentation::from_pairs(&[(0, 0), (1, 0)]).unwrap(), 0);
        let allocation = round_robin(
            vec![1u64; layout.num_fragments() as usize],
            system.num_disks,
        );
        let rows = compare_single_queries(&s, &system, &scheme, &mix, &layout, &allocation, 5, 42);
        let b_point = rows.iter().find(|r| r.class_name == "b_point").unwrap();
        // 8 fragments on 2 disks: 4 waves instead of the predicted 1.
        assert!(
            b_point.simulated_ms > 3.0 * b_point.analytic_ms,
            "expected stride collision: analytic {} vs simulated {}",
            b_point.analytic_ms,
            b_point.simulated_ms
        );
    }

    #[test]
    fn closed_workload_runs_and_reports() {
        let (s, system, mix) = fixture();
        let scheme = BitmapScheme::derive(&s, &mix, SchemeConfig::default());
        let layout =
            FragmentLayout::new(&s, Fragmentation::from_pairs(&[(0, 0), (1, 0)]).unwrap(), 0);
        let allocation = round_robin(
            vec![1u64; layout.num_fragments() as usize],
            system.num_disks,
        );
        let stats = closed_workload(&s, &system, &scheme, &mix, &layout, &allocation, 4, 6, 7);
        assert_eq!(stats.queries, 24);
        assert_eq!(stats.streams, 4);
        assert!(stats.mean_response_ms > 0.0);
        assert!(stats.throughput_per_s > 0.0);
        assert!(stats.utilization > 0.0 && stats.utilization <= 1.0);
    }

    #[test]
    fn contention_raises_response_times() {
        let (s, system, mix) = fixture();
        let scheme = BitmapScheme::derive(&s, &mix, SchemeConfig::default());
        let layout =
            FragmentLayout::new(&s, Fragmentation::from_pairs(&[(0, 0), (1, 0)]).unwrap(), 0);
        let allocation = round_robin(
            vec![1u64; layout.num_fragments() as usize],
            system.num_disks,
        );
        let light = closed_workload(&s, &system, &scheme, &mix, &layout, &allocation, 1, 6, 7);
        let heavy = closed_workload(&s, &system, &scheme, &mix, &layout, &allocation, 8, 6, 7);
        assert!(
            heavy.mean_response_ms > light.mean_response_ms,
            "8 streams {} should beat 1 stream {}",
            heavy.mean_response_ms,
            light.mean_response_ms
        );
        assert!(heavy.utilization > light.utilization);
    }
}
