//! Event-driven storage simulation for WARLOCK.
//!
//! The original tool's cost model was calibrated against measurements on
//! the authors' parallel testbed, which this reproduction does not have.
//! Per the substitution rule, this crate provides the closest synthetic
//! equivalent that exercises the same code paths:
//!
//! * [`SyntheticFact`] — seeded generation of fact rows (bottom-level
//!   member ordinals per dimension) under the configured Zipf skew,
//! * [`MaterializedWarehouse`] — actual fragment populations of a layout
//!   (rows routed to fragments through the hierarchy, exactly as MDHF
//!   prescribes), usable to build *real* bitmap indexes per fragment,
//! * [`BoundQuery`] — concrete query instances: sampled predicate values
//!   mapped to the precise set of accessed fragments,
//! * [`DiskSimulator`] — an event-driven multi-disk FCFS service model
//!   measuring true response times under single- and multi-query load,
//! * [`validate`] — the analytical-vs-simulated comparison harness used by
//!   experiment V1.

#![warn(missing_docs)]

//!
//! # Example
//!
//! ```
//! use warlock_sim::DiskSimulator;
//!
//! // 40 ms of work: serial on one disk vs declustered over four.
//! let mut sim = DiskSimulator::new(4);
//! sim.submit(0.0, vec![(0, 10.0), (1, 10.0), (2, 10.0), (3, 10.0)]);
//! let report = sim.run();
//! assert_eq!(report.outcomes[0].response_ms, 10.0);
//! ```

mod binding;
mod datagen;
mod disksim;
pub mod judge;
mod page_hits;
pub mod validate;
mod warehouse;

pub use binding::{bind_query, BoundQuery};
pub use datagen::SyntheticFact;
pub use disksim::{run_closed, DiskSimulator, QueryOutcome, SimReport};
pub use judge::{judge_head_to_head, ClassLoad, PolicyEntrant, PolicyVerdict};
pub use page_hits::{compare_page_hits, touched_pages, PageHitComparison};
pub use validate::{closed_workload, compare_single_queries, ComparisonRow, WorkloadStats};
pub use warehouse::MaterializedWarehouse;
