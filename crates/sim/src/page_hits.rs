//! Ground-truth validation of the Yao page-hit model.
//!
//! The analytical access path prices bitmap-guided row fetches with Yao's
//! formula. This module materializes the check: rows of a fragment are laid
//! out sequentially on pages, a predicate's qualifying rows come from a
//! real bitmap evaluation, and the touched pages are counted exactly.

use warlock_bitmap::BitVec;

/// Counts the distinct pages touched when fetching the set rows of
/// `selection`, with rows stored `rows_per_page` to a page in row order.
///
/// # Panics
///
/// Panics if `rows_per_page == 0`.
pub fn touched_pages(selection: &BitVec, rows_per_page: u64) -> u64 {
    assert!(rows_per_page > 0, "rows_per_page must be positive");
    let mut pages = 0u64;
    let mut last_page = u64::MAX;
    for row in selection.iter_ones() {
        let page = row as u64 / rows_per_page;
        if page != last_page {
            pages += 1;
            last_page = page;
        }
    }
    pages
}

/// Outcome of one Yao-vs-ground-truth comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageHitComparison {
    /// Rows in the fragment.
    pub rows: u64,
    /// Pages in the fragment.
    pub pages: u64,
    /// Qualifying rows (bitmap popcount).
    pub selected_rows: u64,
    /// Exactly counted touched pages.
    pub actual_pages: f64,
    /// Yao/Cardenas estimate at the same selection size.
    pub estimated_pages: f64,
    /// `(estimated − actual) / max(actual, 1)`.
    pub relative_error: f64,
}

/// Compares the analytical page-hit estimate with the exact count for one
/// fragment selection.
pub fn compare_page_hits(selection: &BitVec, rows_per_page: u64) -> PageHitComparison {
    let rows = selection.len() as u64;
    let pages = rows.div_ceil(rows_per_page.max(1)).max(1);
    let selected_rows = selection.count_ones() as u64;
    let actual = touched_pages(selection, rows_per_page) as f64;
    let estimated = warlock_cost::yao_page_hits(rows, pages, selected_rows as f64);
    PageHitComparison {
        rows,
        pages,
        selected_rows,
        actual_pages: actual,
        estimated_pages: estimated,
        relative_error: (estimated - actual) / actual.max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_pages_counts_runs() {
        // Rows 0..10, 4 per page: rows {0,1} page 0; {5} page 1; {9} page 2.
        let v = BitVec::from_indices(10, [0, 1, 5, 9]);
        assert_eq!(touched_pages(&v, 4), 3);
        assert_eq!(touched_pages(&BitVec::zeros(10), 4), 0);
        assert_eq!(touched_pages(&BitVec::ones(10), 4), 3);
    }

    #[test]
    fn dense_selection_touches_every_page() {
        let c = compare_page_hits(&BitVec::ones(1000), 10);
        assert_eq!(c.actual_pages, 100.0);
        assert!((c.estimated_pages - 100.0).abs() < 1e-9);
        assert!(c.relative_error.abs() < 1e-9);
    }

    #[test]
    fn sparse_uniform_selection_matches_yao_closely() {
        // Pseudo-random uniform selection of ~1 in 50 rows.
        let rows = 100_000usize;
        let mut v = BitVec::zeros(rows);
        let mut state = 0x12345678u64;
        let mut selected = 0;
        for i in 0..rows {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if (state >> 33).is_multiple_of(50) {
                v.set(i, true);
                selected += 1;
            }
        }
        assert!(selected > 1000);
        let c = compare_page_hits(&v, 100);
        // Yao assumes uniform placement — a uniform selection must agree
        // within a few percent.
        assert!(
            c.relative_error.abs() < 0.05,
            "estimate {} vs actual {} ({:+.1}%)",
            c.estimated_pages,
            c.actual_pages,
            c.relative_error * 100.0
        );
    }

    #[test]
    fn clustered_selection_beats_yao() {
        // All selected rows packed at the front: Yao (random placement)
        // overestimates touched pages — the expected direction.
        let rows = 10_000usize;
        let v = BitVec::from_indices(rows, 0..500);
        let c = compare_page_hits(&v, 100);
        assert_eq!(c.actual_pages, 5.0);
        assert!(c.estimated_pages > c.actual_pages * 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rows_per_page_rejected() {
        let _ = touched_pages(&BitVec::zeros(4), 0);
    }

    /// The simulator must price estimates with the *shared* estimator in
    /// `warlock-cost` — not a private reimplementation. Pins the routed
    /// values bit-for-bit, in both the exact-Yao regime (rows divisible
    /// by pages) and the Cardenas fallback, against direct estimator
    /// calls and against literal reference bits.
    #[test]
    fn comparison_routes_through_shared_estimator_bit_for_bit() {
        // 37 selected rows spread over 1000 rows.
        let sel = BitVec::from_indices(1000, (0..37).map(|i| i * 27));

        // Exact regime: 10 rows/page -> 100 pages, 1000 % 100 == 0.
        let exact = compare_page_hits(&sel, 10);
        assert_eq!(exact.pages, 100);
        assert_eq!(
            exact.estimated_pages.to_bits(),
            warlock_cost::yao_page_hits(1000, 100, 37.0).to_bits()
        );
        assert_eq!(exact.estimated_pages.to_bits(), 0x403f87680bee76c4);

        // Cardenas regime: 11 rows/page -> 91 pages, 1000 % 91 != 0.
        let card = compare_page_hits(&sel, 11);
        assert_eq!(card.pages, 91);
        assert_eq!(
            card.estimated_pages.to_bits(),
            warlock_cost::yao_page_hits(1000, 91, 37.0).to_bits()
        );
        assert_eq!(card.estimated_pages.to_bits(), 0x403e89b863f12db8);

        // Sweep: every shape stays bit-identical to the shared estimator.
        for rpp in [1, 3, 7, 10, 11, 64, 1000, 5000] {
            let c = compare_page_hits(&sel, rpp);
            assert_eq!(
                c.estimated_pages.to_bits(),
                warlock_cost::yao_page_hits(c.rows, c.pages, c.selected_rows as f64).to_bits(),
                "rows_per_page {rpp}"
            );
        }
    }
}
