//! Seeded synthetic fact-data generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use warlock_schema::StarSchema;
use warlock_skew::SkewModel;

/// A generated fact table: one column of bottom-level member ordinals per
/// dimension.
///
/// Column-major storage matches how the bitmap substrate consumes the data
/// and keeps the memory footprint at `8 bytes × rows × dims`.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticFact {
    columns: Vec<Vec<u64>>,
    rows: usize,
}

impl SyntheticFact {
    /// Generates `rows` fact rows for `schema` under `skew`, sampling each
    /// dimension independently (the model's independence assumption) with
    /// a deterministic seed.
    pub fn generate(schema: &StarSchema, skew: &SkewModel, rows: usize, seed: u64) -> Self {
        assert_eq!(
            schema.num_dimensions(),
            skew.num_dimensions(),
            "skew model must cover every dimension"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut columns: Vec<Vec<u64>> = Vec::with_capacity(schema.num_dimensions());
        for d in 0..schema.num_dimensions() {
            let weights = skew.bottom_weights(d);
            // Cumulative distribution for O(log n) sampling.
            let mut cdf = Vec::with_capacity(weights.len());
            let mut acc = 0.0;
            for &w in weights {
                acc += w;
                cdf.push(acc);
            }
            if let Some(last) = cdf.last_mut() {
                *last = 1.0;
            }
            let column = (0..rows)
                .map(|_| {
                    let u: f64 = rng.gen();
                    cdf.partition_point(|&c| c <= u).min(weights.len() - 1) as u64
                })
                .collect();
            columns.push(column);
        }
        Self { columns, rows }
    }

    /// Generates the schema-resolved number of fact rows (use only for
    /// small schemas; prefer an explicit `rows` for tests).
    pub fn generate_full(schema: &StarSchema, skew: &SkewModel, seed: u64) -> Self {
        let rows = schema.fact_rows(0);
        assert!(
            rows <= 50_000_000,
            "refusing to materialize {rows} rows; pass an explicit row count"
        );
        Self::generate(schema, skew, rows as usize, seed)
    }

    /// Number of generated rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bottom-member column of dimension `d`.
    #[inline]
    pub fn column(&self, d: usize) -> &[u64] {
        &self.columns[d]
    }

    /// Number of dimensions.
    #[inline]
    pub fn num_dimensions(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_fragment::SkewModelExt;
    use warlock_schema::{Dimension, FactTable};
    use warlock_skew::DimensionSkew;

    fn small_schema() -> StarSchema {
        StarSchema::builder()
            .dimension(
                Dimension::builder("a")
                    .level("top", 4)
                    .level("bottom", 16)
                    .build()
                    .unwrap(),
            )
            .dimension(Dimension::builder("b").level("only", 8).build().unwrap())
            .fact(FactTable::builder("f").rows(10_000).build())
            .build()
            .unwrap()
    }

    #[test]
    fn shape_and_ranges() {
        let s = small_schema();
        let data = SyntheticFact::generate(&s, &s.uniform_skew_model(), 5000, 1);
        assert_eq!(data.rows(), 5000);
        assert_eq!(data.num_dimensions(), 2);
        assert!(data.column(0).iter().all(|&m| m < 16));
        assert!(data.column(1).iter().all(|&m| m < 8));
    }

    #[test]
    fn deterministic_per_seed() {
        let s = small_schema();
        let skew = s.uniform_skew_model();
        let a = SyntheticFact::generate(&s, &skew, 1000, 9);
        let b = SyntheticFact::generate(&s, &skew, 1000, 9);
        let c = SyntheticFact::generate(&s, &skew, 1000, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_generation_is_roughly_uniform() {
        let s = small_schema();
        let data = SyntheticFact::generate(&s, &s.uniform_skew_model(), 64_000, 3);
        let mut counts = [0u32; 16];
        for &m in data.column(0) {
            counts[m as usize] += 1;
        }
        let expected = 64_000.0 / 16.0;
        for &c in &counts {
            assert!((f64::from(c) - expected).abs() / expected < 0.1);
        }
    }

    #[test]
    fn skewed_generation_matches_weights() {
        let s = small_schema();
        let skew = s.skew_model(&[DimensionSkew::zipf(1.0), DimensionSkew::UNIFORM]);
        let data = SyntheticFact::generate(&s, &skew, 100_000, 5);
        let mut counts = [0u32; 16];
        for &m in data.column(0) {
            counts[m as usize] += 1;
        }
        // Heaviest member ~w0, lightest ~w15; check the ratio direction.
        assert!(counts[0] > counts[15] * 5);
        let w = skew.bottom_weights(0);
        let observed0 = f64::from(counts[0]) / 100_000.0;
        assert!((observed0 - w[0]).abs() < 0.02);
    }

    #[test]
    fn generate_full_uses_schema_rows() {
        let s = small_schema();
        let data = SyntheticFact::generate_full(&s, &s.uniform_skew_model(), 2);
        assert_eq!(data.rows(), 10_000);
    }

    #[test]
    #[should_panic(expected = "cover every dimension")]
    fn skew_arity_checked() {
        let s = small_schema();
        let skew = warlock_skew::SkewModel::uniform(&[16]);
        let _ = SyntheticFact::generate(&s, &skew, 10, 1);
    }
}
