//! Advising a custom (non-APB-1) warehouse: a telecom call-detail store.
//!
//! Run with: `cargo run --release --example custom_schema`
//!
//! Demonstrates the builder APIs the DBA-facing input layer maps to:
//! defining dimensions with hierarchy cardinalities, fact tables with
//! measures and row counts, and a bespoke weighted query mix — then
//! letting the advisor pick fragmentation, bitmaps and allocation.

use warlock::prelude::*;
use warlock::report::{render_analysis, render_ranking};

fn main() -> Result<(), WarlockError> {
    // A telecom schema: calls recorded by region/cell, tariff, and time.
    let geography = Dimension::builder("geography")
        .level("region", 16)
        .level("area", 256)
        .level("cell", 16_384)
        .build()
        .expect("valid hierarchy");
    let tariff = Dimension::builder("tariff")
        .level("family", 6)
        .level("plan", 48)
        .build()
        .expect("valid hierarchy");
    let time = Dimension::builder("time")
        .level("year", 3)
        .level("month", 36)
        .level("day", 1080)
        .build()
        .expect("valid hierarchy");

    let calls = FactTable::builder("calls")
        .measure("duration_s", 8)
        .measure("revenue", 8)
        .rows(250_000_000)
        .build();

    let schema = StarSchema::builder()
        .dimension(geography)
        .dimension(tariff)
        .dimension(time)
        .fact(calls)
        .build()
        .expect("valid schema");

    // Dimension ids follow declaration order: 0 = geography, 1 = tariff,
    // 2 = time. Level ids are coarse → fine.
    let mix = QueryMix::builder()
        .class(
            QueryClass::new("daily_region_report")
                .with(0, DimensionPredicate::point(0)) // one region
                .with(2, DimensionPredicate::point(2)), // one day
            30.0,
        )
        .class(
            QueryClass::new("monthly_plan_revenue")
                .with(1, DimensionPredicate::point(1)) // one plan
                .with(2, DimensionPredicate::point(1)), // one month
            25.0,
        )
        .class(
            QueryClass::new("cell_drilldown")
                .with(0, DimensionPredicate::point(2)) // one cell
                .with(2, DimensionPredicate::range(1, 3)), // three months
            15.0,
        )
        .class(
            QueryClass::new("yearly_family_trend")
                .with(1, DimensionPredicate::point(0)) // tariff family
                .with(2, DimensionPredicate::point(0)), // one year
            20.0,
        )
        .class(
            QueryClass::new("area_quarter_scan")
                .with(0, DimensionPredicate::point(1)) // one area
                .with(2, DimensionPredicate::range(1, 3)),
            10.0,
        )
        .build()
        .expect("valid mix");

    // A Shared Disk cluster: 4 nodes × 8 processors, 32 disks.
    let mut system = SystemConfig::default_2001(32);
    system.architecture = Architecture::shared_disk(4, 8);

    // The builder validates the mix against the schema and owns both.
    let session = Warlock::builder()
        .schema(schema)
        .system(system)
        .mix(mix)
        .build()?;
    println!("{}", render_ranking(session.rank()?));
    println!("{}", render_analysis(&session.analyze(1)?));
    Ok(())
}
