//! Range fragmentation — the general MDHF case (extension).
//!
//! Run with: `cargo run --release --example range_fragmentation`
//!
//! The paper's strategy is a multi-dimensional hierarchical *range*
//! fragmentation; the tool's evaluation space uses ranges of size 1
//! ("point" fragmentations). This example exercises the general case: a
//! range of `r` consecutive member values per fragment coordinate, which
//! synthesizes granularities *between* hierarchy levels — and collapses to
//! an existing level when `r` equals the fan-out.

use warlock::fragment::{enumerate_candidates, enumerate_candidates_ranged};
use warlock::prelude::*;

fn main() {
    let session = Warlock::builder()
        .schema(apb1_like_schema(Apb1Config::default()).expect("preset schema"))
        .system(SystemConfig::default_2001(16))
        .mix(apb1_like_mix().expect("preset mix"))
        .build()
        .expect("valid inputs");
    let schema = session.schema();

    // The identity: grouping 10 codes per coordinate IS the class level.
    let ranged = Fragmentation::from_ranged_pairs(&[(0, 5, 10), (2, 2, 1)]).expect("valid");
    let point = Fragmentation::from_pairs(&[(0, 4), (2, 2)]).expect("valid");
    let a = session.evaluate(&ranged).expect("evaluates");
    let b = session.evaluate(&point).expect("evaluates");
    println!("identity check:");
    println!(
        "  {:<36} {:>8} fragments, {:>9.1} ms io, {:>7.1} ms response",
        ranged.label(schema),
        a.num_fragments,
        a.io_cost_ms,
        a.response_ms
    );
    println!(
        "  {:<36} {:>8} fragments, {:>9.1} ms io, {:>7.1} ms response",
        point.label(schema),
        b.num_fragments,
        b.io_cost_ms,
        b.response_ms
    );
    assert_eq!(a.num_fragments, b.num_fragments);

    // Intermediate granularities nothing in the hierarchy provides:
    // bi-monthly and semi-annual coordinates between month and quarter/year.
    println!("\nsynthesized time granularities (× product.family):");
    for (name, frag) in [
        (
            "family × quarter (point)",
            Fragmentation::from_pairs(&[(0, 2), (2, 1)]).unwrap(),
        ),
        (
            "family × month[r=3] (== quarter)",
            Fragmentation::from_ranged_pairs(&[(0, 2, 1), (2, 2, 3)]).unwrap(),
        ),
        (
            "family × month (point)",
            Fragmentation::from_pairs(&[(0, 2), (2, 2)]).unwrap(),
        ),
    ] {
        let cost = session.evaluate(&frag).expect("evaluates");
        println!(
            "  {:<36} {:>8} fragments, {:>9.1} ms io, {:>7.1} ms response",
            name, cost.num_fragments, cost.io_cost_ms, cost.response_ms
        );
    }

    // How much bigger is the ranged candidate space?
    let points = enumerate_candidates(schema, 4);
    let ranged_space = enumerate_candidates_ranged(schema, 4, &[2, 3, 5]);
    println!(
        "\ncandidate space: {} point candidates, {} with ranges {{2,3,5}}",
        points.len(),
        ranged_space.len()
    );
}
