//! Data skew and the two allocation schemes.
//!
//! Run with: `cargo run --release --example skew_allocation`
//!
//! Sweeps the Zipf exponent of the product dimension and compares logical
//! round-robin against greedy size-based allocation: disk-occupancy
//! imbalance and the exact response time of a representative query on the
//! resulting placements. Reproduces the paper's motivation for the greedy
//! scheme "under notable data skew".

use warlock::alloc::AllocationPolicy;
use warlock::prelude::*;

fn main() {
    // One owned session; each sweep step swaps in a new configuration
    // (skew + allocation policy) via `set_config`.
    let mut session = Warlock::builder()
        .schema(apb1_like_schema(Apb1Config::default()).expect("preset schema"))
        .system(SystemConfig::default_2001(16))
        .mix(apb1_like_mix().expect("preset mix"))
        .build()
        .expect("valid inputs");
    // product.line × time.month: 360 fragments, enough for 16 disks.
    let frag = Fragmentation::from_pairs(&[(0, 1), (2, 2)]).expect("valid candidate");

    println!(
        "{:<8} {:>18} {:>18} {:>16} {:>16}",
        "zipf θ", "rr imbalance", "greedy imbalance", "rr q03 [ms]", "greedy q03 [ms]"
    );
    println!("{}", "-".repeat(80));

    for &theta in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let skew = vec![
            DimensionSkew::zipf(theta), // product skewed
            DimensionSkew::UNIFORM,
            DimensionSkew::UNIFORM,
            DimensionSkew::UNIFORM,
        ];
        let mut config = AdvisorConfig {
            skew: Some(skew),
            ..Default::default()
        };

        config.allocation_policy = AllocationPolicy::RoundRobin;
        session.set_config(config.clone()).expect("valid");
        let rr: AllocationPlan = session.plan_candidate(&frag).expect("plans");

        config.allocation_policy = AllocationPolicy::GreedySize;
        session.set_config(config).expect("valid");
        let greedy: AllocationPlan = session.plan_candidate(&frag).expect("plans");

        let pick = |plan: &AllocationPlan| {
            plan.per_class
                .iter()
                .find(|c| c.name == "q03_quarter_group")
                .map(|c| c.response_ms)
                .unwrap_or(f64::NAN)
        };

        println!(
            "{:<8} {:>18.3} {:>18.3} {:>16.1} {:>16.1}",
            theta,
            rr.occupancy.imbalance,
            greedy.occupancy.imbalance,
            pick(&rr),
            pick(&greedy),
        );
    }

    println!(
        "\nGreedy keeps occupancy near 1.0 as θ grows; round-robin drifts with the\n\
         heaviest fragments and its hot disks inflate the response of queries that\n\
         touch them."
    );
}
