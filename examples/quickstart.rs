//! Quickstart: advise an APB-1-like warehouse on 16 disks.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! This walks the full WARLOCK pipeline on the demonstration
//! configuration: the APB-1-like star schema, the ten-class weighted query
//! mix, and a 16-disk circa-2001 system. It prints the ranked
//! fragmentation candidates, the detailed query statistic of the winner
//! (the tool's Fig. 2 content), and the physical allocation scheme.

use warlock::report::{render_allocation, render_analysis, render_ranking};
use warlock::{Advisor, AdvisorConfig};
use warlock_schema::{apb1_like_schema, Apb1Config};
use warlock_storage::SystemConfig;
use warlock_workload::apb1_like_mix;

fn main() {
    // Input layer: schema, disk/system parameters, weighted query mix.
    let schema = apb1_like_schema(Apb1Config::default()).expect("preset schema builds");
    let mix = apb1_like_mix().expect("preset mix builds");
    let system = SystemConfig::default_2001(16);

    println!(
        "schema: {} dimensions, {} fact rows ({:.1} GiB)",
        schema.num_dimensions(),
        schema.fact_rows(0),
        schema.fact_bytes(0) as f64 / (1 << 30) as f64
    );
    println!("workload: {} weighted query classes", mix.len());
    println!(
        "system: {} disks, {} processors\n",
        system.num_disks,
        system.architecture.total_processors()
    );

    // Prediction layer: enumerate, exclude, cost, twofold-rank.
    let advisor =
        Advisor::new(&schema, &system, &mix, AdvisorConfig::default()).expect("valid inputs");
    let report = advisor.run();
    println!("{}", render_ranking(&report));

    // Analysis layer: detailed statistic and allocation of the winner.
    let top = report.top().expect("candidates survive");
    println!("{}", render_analysis(&advisor.analyze(&top.cost.fragmentation)));
    println!(
        "{}",
        render_allocation(&advisor.plan_allocation(&top.cost.fragmentation))
    );
}
