//! Quickstart: advise an APB-1-like warehouse on 16 disks.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! This walks the full WARLOCK pipeline on the demonstration
//! configuration through the owned session facade: the APB-1-like star
//! schema, the ten-class weighted query mix, and a 16-disk circa-2001
//! system. It prints the ranked fragmentation candidates, the detailed
//! query statistic of the winner (the tool's Fig. 2 content), and the
//! physical allocation scheme.

use warlock::prelude::*;
use warlock::report::{render_allocation, render_analysis, render_ranking};

fn main() -> Result<(), WarlockError> {
    // Input layer: schema, disk/system parameters, weighted query mix —
    // owned by the session, validated once at build time.
    let session = Warlock::builder()
        .schema(apb1_like_schema(Apb1Config::default())?)
        .system(SystemConfig::default_2001(16))
        .mix(apb1_like_mix()?)
        .build()?;

    println!(
        "schema: {} dimensions, {} fact rows ({:.1} GiB)",
        session.schema().num_dimensions(),
        session.schema().fact_rows(0),
        session.schema().fact_bytes(0) as f64 / (1 << 30) as f64
    );
    println!("workload: {} weighted query classes", session.mix().len());
    println!(
        "system: {} disks, {} processors\n",
        session.system().num_disks,
        session.system().architecture.total_processors()
    );

    // Prediction layer: enumerate, exclude, cost, twofold-rank (cached
    // on the session).
    println!("{}", render_ranking(session.rank()?));

    // Analysis layer: detailed statistic and allocation of the winner.
    println!("{}", render_analysis(&session.analyze(1)?));
    println!("{}", render_allocation(&session.plan_allocation(1)?));
    Ok(())
}
