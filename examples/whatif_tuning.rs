//! Interactive what-if tuning (§3.3 of the paper).
//!
//! Run with: `cargo run --release --example whatif_tuning`
//!
//! The GUI let attendants "modify the parameter configurations and let
//! WARLOCK compare the results". This example drives the same knobs
//! programmatically: disk-count scaling, fixed prefetch granules, dropped
//! bitmap dimensions, and removed query classes — reporting how the
//! recommendation and its response time move.

use warlock::{AdvisorConfig, TuningSession};
use warlock_schema::{apb1_like_schema, Apb1Config, DimensionId};
use warlock_storage::SystemConfig;
use warlock_workload::apb1_like_mix;

fn main() {
    let session = TuningSession::new(
        apb1_like_schema(Apb1Config::default()).expect("preset schema"),
        SystemConfig::default_2001(16),
        apb1_like_mix().expect("preset mix"),
        AdvisorConfig::default(),
    )
    .expect("valid inputs");

    let base = session.baseline().top().expect("candidates survive");
    println!(
        "baseline (16 disks): {}  response {:.1} ms\n",
        base.label, base.cost.response_ms
    );

    println!(
        "{:<36} {:<34} {:>12} {:>9}",
        "variation", "recommended fragmentation", "resp [ms]", "changed?"
    );
    println!("{}", "-".repeat(95));

    let show = |variation: &warlock::tuning::TuningDelta| {
        println!(
            "{:<36} {:<34} {:>12.1} {:>9}",
            variation.variation,
            variation.variation_top,
            variation.variation_response_ms,
            if variation.recommendation_changed { "yes" } else { "no" }
        );
    };

    for disks in [4, 8, 32, 64] {
        let (_, delta) = session.with_disks(disks);
        show(&delta);
    }
    for pages in [1, 8, 64] {
        let (_, delta) = session.with_fixed_prefetch(pages);
        show(&delta);
    }
    for d in 0..4u16 {
        let (_, delta) = session.without_bitmap_dimension(DimensionId(d));
        show(&delta);
    }
    if let Some((_, delta)) = session.without_class("q02_month_class") {
        show(&delta);
    }
}
