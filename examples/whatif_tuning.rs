//! Interactive what-if tuning (§3.3 of the paper).
//!
//! Run with: `cargo run --release --example whatif_tuning`
//!
//! The GUI let attendants "modify the parameter configurations and let
//! WARLOCK compare the results". This example drives the same knobs
//! programmatically on one owned [`Warlock`] session: disk-count scaling,
//! fixed prefetch granules, dropped bitmap dimensions, and removed query
//! classes — reporting how the recommendation and its response time move
//! against the session's cached baseline.

use warlock::prelude::*;
use warlock::schema::DimensionId;

fn main() -> Result<(), WarlockError> {
    let session = Warlock::builder()
        .schema(apb1_like_schema(Apb1Config::default())?)
        .system(SystemConfig::default_2001(16))
        .mix(apb1_like_mix()?)
        .build()?;

    let base = session.rank()?.top().expect("candidates survive").clone();
    println!(
        "baseline (16 disks): {}  response {:.1} ms\n",
        base.label, base.cost.response_ms
    );

    println!(
        "{:<36} {:<34} {:>12} {:>9}",
        "variation", "recommended fragmentation", "resp [ms]", "changed?"
    );
    println!("{}", "-".repeat(95));

    let show = |delta: &TuningDelta| {
        println!(
            "{:<36} {:<34} {:>12.1} {:>9}",
            delta.variation,
            delta.variation_top,
            delta.variation_response_ms,
            if delta.recommendation_changed {
                "yes"
            } else {
                "no"
            }
        );
    };

    for disks in [4, 8, 32, 64] {
        let (_, delta) = session.what_if_disks(disks)?;
        show(&delta);
    }
    for pages in [1, 8, 64] {
        let (_, delta) = session.what_if_fixed_prefetch(pages)?;
        show(&delta);
    }
    for d in 0..4u16 {
        let (_, delta) = session.what_if_without_bitmap_dimension(DimensionId(d))?;
        show(&delta);
    }
    let (_, delta) = session.what_if_without_class("q02_month_class")?;
    show(&delta);
    Ok(())
}
