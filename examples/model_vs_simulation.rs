//! Validating the analytical model against the event-driven simulator.
//!
//! Run with: `cargo run --release --example model_vs_simulation`
//!
//! The advisor's rankings are only as good as its analytical estimates.
//! This example binds concrete query instances, places fragments with the
//! real allocator, simulates them on FCFS disk queues, and reports the
//! per-class analytical-vs-simulated response times — then runs a closed
//! 8-stream workload to show the multi-user contention the paper's
//! throughput heuristic anticipates.

use warlock::alloc::round_robin;
use warlock::fragment::FragmentLayout;
use warlock::prelude::*;
use warlock_sim::{closed_workload, compare_single_queries};

fn main() {
    // 17 disks: prime, so no fragmentation stride can alias onto a disk
    // subset (see the stride-collision test in warlock-sim).
    let session = Warlock::builder()
        .schema(apb1_like_schema(Apb1Config::default()).expect("preset schema"))
        .system(SystemConfig::default_2001(17))
        .mix(apb1_like_mix().expect("preset mix"))
        .build()
        .expect("valid inputs");
    let (schema, system, mix) = (session.schema(), session.system(), session.mix());

    let frag = Fragmentation::from_pairs(&[(0, 1), (2, 2)]).expect("line × month");
    let layout = FragmentLayout::new(schema, frag, 0);
    let allocation = round_robin(
        vec![1u64; layout.num_fragments() as usize],
        system.num_disks,
    );

    println!(
        "single-query validation ({}):\n",
        layout.fragmentation().label(schema)
    );
    println!(
        "{:<30} {:>14} {:>14} {:>10}",
        "query class", "analytic [ms]", "simulated [ms]", "error"
    );
    println!("{}", "-".repeat(72));
    let rows = compare_single_queries(
        schema,
        system,
        session.scheme(),
        mix,
        &layout,
        &allocation,
        20,
        42,
    );
    for r in &rows {
        println!(
            "{:<30} {:>14.1} {:>14.1} {:>9.1}%",
            r.class_name,
            r.analytic_ms,
            r.simulated_ms,
            r.relative_error * 100.0
        );
    }
    let mean_abs: f64 =
        rows.iter().map(|r| r.relative_error.abs()).sum::<f64>() / rows.len() as f64;
    println!("\nmean |error|: {:.1}%\n", mean_abs * 100.0);

    println!("closed workload (streams × 10 queries each):");
    println!(
        "{:>8} {:>16} {:>18} {:>14}",
        "streams", "mean resp [ms]", "throughput [q/s]", "utilization"
    );
    for streams in [1, 2, 4, 8, 16] {
        let stats = closed_workload(
            schema,
            system,
            session.scheme(),
            mix,
            &layout,
            &allocation,
            streams,
            10,
            7,
        );
        println!(
            "{:>8} {:>16.1} {:>18.2} {:>14.2}",
            streams, stats.mean_response_ms, stats.throughput_per_s, stats.utilization
        );
    }
}
