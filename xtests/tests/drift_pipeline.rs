//! The resident optimizer end-to-end: seeded drift trajectories
//! replayed through `Warlock::observe` must fire the auto re-advise
//! exactly once past hysteresis, the warm re-rank must be bit-identical
//! to a cold advisor at the same observed mix, and the cache statistics
//! must prove the re-advise recombined cached class costs instead of
//! re-costing. Plus the property side: drift scoring is a pure function
//! of the ordered observation stream (any batch split, any worker
//! count), and the hysteresis band cannot flap.

use proptest::prelude::*;
use warlock::prelude::*;
use warlock_scenarios::{generate_fleet, MixShape, ScenarioSpace};
use warlock_workload::{mix_divergence, ClassObservation, DriftDetector, DriftState, StatsWindow};

/// Every drifting scenario of the default fleet, replayed through an
/// auto-advising session: exactly one recommendation change, fired
/// strictly past the first batch (hysteresis needs the trajectory to
/// build up), with the adopted ranking bit-identical to a cold session
/// ranked at the same observed mix.
#[test]
fn seeded_trajectories_fire_exactly_one_warm_readvise() {
    let fleet = generate_fleet(42, 12, &ScenarioSpace::default());
    let drifting: Vec<_> = fleet
        .iter()
        .filter(|s| s.class.mix == MixShape::Drifting)
        .collect();
    assert_eq!(drifting.len(), 3, "mix shape cycles fastest in the grid");

    for scenario in drifting {
        let mut session = scenario.session().expect("scenario must build");
        session.set_auto_advise(true).unwrap();
        session.rank().unwrap();
        let cold_misses = session.cache_stats().misses;

        let mut fired_at = None;
        for (i, batch) in scenario.drift_trajectory().iter().enumerate() {
            let status = session.observe(batch).unwrap();
            if status.events_emitted > 0 && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        let fired_at = fired_at.unwrap_or_else(|| panic!("{} never fired", scenario.label()));
        assert!(
            fired_at > 0,
            "{}: fired on the very first batch",
            scenario.label()
        );
        let events = session.advice_events(0);
        assert_eq!(
            events.len(),
            1,
            "{}: re-advised more than once",
            scenario.label()
        );

        // The warm re-advise recombined cached class costs: the miss
        // counter must not have moved (the trajectory keeps every
        // configured class alive, so the structure fingerprints all
        // hit), and the hit rate is strictly above the cold rank's.
        let stats = session.cache_stats();
        assert_eq!(
            stats.misses,
            cold_misses,
            "{}: re-advise re-costed",
            scenario.label()
        );
        assert!(
            stats.hits > 0,
            "{}: re-advise never hit the cache",
            scenario.label()
        );

        // Bit-identical to a cold advisor at the same observed mix.
        let adopted = session.mix().clone();
        let mut cold = scenario.session().unwrap();
        cold.set_mix(adopted).unwrap();
        let cold_report = cold.rank().unwrap();
        let warm_report = session.ranking().unwrap();
        assert_eq!(warm_report.ranked.len(), cold_report.ranked.len());
        for (w, c) in warm_report.ranked.iter().zip(cold_report.ranked.iter()) {
            assert_eq!(w.label, c.label, "{}", scenario.label());
            assert_eq!(
                w.cost.response_ms.to_bits(),
                c.cost.response_ms.to_bits(),
                "{}: warm re-rank diverged from cold at {}",
                scenario.label(),
                w.label
            );
        }
    }
}

/// The typed empty-mix error surfaces through the drift path: traffic
/// made only of classes the configuration does not define pushes the
/// score up but cannot be costed, so the auto re-advise fails loudly
/// instead of silently keeping the stale ranking.
#[test]
fn unknown_only_traffic_surfaces_the_typed_empty_mix_error() {
    let scenario = &generate_fleet(42, 4, &ScenarioSpace::default())[3];
    assert_eq!(scenario.class.mix, MixShape::Drifting);
    let mut session = scenario.session().unwrap();
    session.set_auto_advise(true).unwrap();
    session.rank().unwrap();

    let alien = vec![ClassObservation::new("not_a_configured_class", 50_000)];
    let mut last = None;
    for _ in 0..16 {
        match session.observe(&alien) {
            Ok(status) => last = Some(status),
            Err(e) => {
                assert!(
                    matches!(e, WarlockError::Workload(_)),
                    "expected the typed workload error, got {e:?}"
                );
                return;
            }
        }
    }
    panic!("never errored; last status {last:?}");
}

fn observation_stream() -> impl Strategy<Value = Vec<ClassObservation>> {
    proptest::collection::vec(
        (0usize..6, 1u64..500, proptest::option::of(0.1f64..50.0)).prop_map(
            |(class, count, latency)| {
                let obs = ClassObservation::new(format!("q{class:02}"), count);
                match latency {
                    Some(ms) => obs.with_latency_ms(ms),
                    None => obs,
                }
            },
        ),
        1..60,
    )
}

/// Splits `stream` into batches at the given cut points and replays
/// them through a fresh window, collecting the score after each
/// observation boundary shared by every split: the final state.
fn replay(stream: &[ClassObservation], cuts: &[usize], half_life: f64) -> (StatsWindow, Vec<u64>) {
    let mut window = StatsWindow::new(half_life);
    let mut sizes = Vec::new();
    let mut start = 0;
    for &cut in cuts {
        let cut = cut.min(stream.len());
        if cut > start {
            window.ingest(&stream[start..cut]);
            sizes.push((cut - start) as u64);
            start = cut;
        }
    }
    if start < stream.len() {
        window.ingest(&stream[start..]);
        sizes.push((stream.len() - start) as u64);
    }
    (window, sizes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The decayed window — and therefore every drift score — is a
    /// pure function of the ordered observation stream: any batch
    /// split produces bit-identical weights.
    #[test]
    fn window_state_is_invariant_under_batch_splits(
        stream in observation_stream(),
        cuts in proptest::collection::vec(0usize..60, 0..8),
        half_life in 10.0f64..10_000.0,
    ) {
        let mut sorted = cuts.clone();
        sorted.sort_unstable();
        let (one_shot, _) = replay(&stream, &[], half_life);
        let (split, _) = replay(&stream, &sorted, half_life);
        prop_assert_eq!(one_shot.observed_queries(), split.observed_queries());
        prop_assert_eq!(one_shot.len(), split.len());
        for (class, weight) in one_shot.weights() {
            prop_assert!(
                weight.to_bits() == split.weight_of(class).to_bits(),
                "weight of {} diverged under the split",
                class
            );
        }
        for (class, _) in one_shot.weights() {
            match (one_shot.mean_latency_ms(class), split.mean_latency_ms(class)) {
                (None, None) => {}
                (Some(a), Some(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => prop_assert!(false, "latency of {} diverged: {:?} vs {:?}", class, a, b),
            }
        }
    }

    /// Detector determinism: the transition sequence is a pure function
    /// of the score sequence, and replaying any prefix lands in the
    /// same state.
    #[test]
    fn detector_transitions_are_deterministic(
        scores in proptest::collection::vec(0.0f64..1.0, 1..50),
        enter in 0.05f64..0.9,
        band in 0.0f64..0.5,
    ) {
        let exit = enter * (1.0 - band);
        let mut a = DriftDetector::new(enter, exit);
        let mut b = DriftDetector::new(enter, exit);
        for &s in &scores {
            let ta = a.update(s);
            let tb = b.update(s);
            prop_assert_eq!(ta, tb);
        }
        prop_assert_eq!(a.state(), b.state());
    }

    /// Hysteresis never flaps: a score pinned exactly on a threshold
    /// produces at most one transition no matter how often it repeats —
    /// entering takes `score > enter` strictly, exiting takes
    /// `score < exit` strictly.
    #[test]
    fn detector_does_not_flap_on_exact_thresholds(
        enter in 0.05f64..0.9,
        band in 0.0f64..0.5,
        repeats in 1usize..30,
    ) {
        let exit = enter * (1.0 - band);
        let mut detector = DriftDetector::new(enter, exit);

        // Sitting exactly on the enter threshold never enters…
        for _ in 0..repeats {
            prop_assert_eq!(detector.update(enter), None);
            prop_assert_eq!(detector.state(), DriftState::Stable);
        }
        // …strictly above enters exactly once…
        let mut transitions = 0;
        for _ in 0..repeats {
            if detector.update(enter + 1e-6).is_some() {
                transitions += 1;
            }
        }
        prop_assert_eq!(transitions, 1);
        prop_assert_eq!(detector.state(), DriftState::Drifting);
        // …and sitting exactly on the exit threshold never exits.
        for _ in 0..repeats {
            prop_assert_eq!(detector.update(exit), None);
            prop_assert_eq!(detector.state(), DriftState::Drifting);
        }
        let mut exits = 0;
        for _ in 0..repeats {
            if detector.update(exit - 1e-6).is_some() {
                exits += 1;
            }
        }
        prop_assert_eq!(exits, if exit > 0.0 { 1 } else { 0 });
    }

    /// The drift score agrees with a matching mix: traffic distributed
    /// exactly like the configured weights scores (near) zero. The
    /// half-life dwarfs the batch so the per-observation decay cannot
    /// skew the within-batch ordering.
    #[test]
    fn matching_traffic_scores_low(
        seed_class in 0usize..36,
        scale in 10u64..1000,
    ) {
        let fleet = generate_fleet(42, 36, &ScenarioSpace::default());
        let scenario = &fleet[seed_class];
        let mix = &scenario.parsed.mix;
        let batch: Vec<ClassObservation> = mix
            .iter()
            .map(|(class, share)| {
                ClassObservation::new(
                    class.name().to_owned(),
                    ((share * scale as f64 * 100.0).round() as u64).max(1),
                )
            })
            .collect();
        let mut window = StatsWindow::new(1e12);
        window.ingest(&batch);
        let score = mix_divergence(mix, &window);
        prop_assert!(score < 0.02, "matching traffic scored {}", score);
    }
}
