//! Parallel-vs-serial equivalence: `engine::run` must produce
//! bit-identical `AdvisorReport`s (ranking order, excluded set,
//! per-query costs) for any worker count, on arbitrary valid inputs —
//! and the per-session evaluation cache must never change a result
//! either, only skip work.

use proptest::prelude::*;

use warlock::prelude::*;
use warlock_schema::{random_schema, RandomSchemaConfig};
use warlock_workload::{GeneratorConfig, WorkloadGenerator};

fn session_for(seed: u64, workers: usize) -> Warlock {
    let schema = random_schema(seed, RandomSchemaConfig::default()).unwrap();
    let mix = WorkloadGenerator::new(
        seed.wrapping_mul(0x9e37_79b9),
        GeneratorConfig {
            num_classes: 5,
            max_dimensionality: 3,
            range_probability: 0.25,
        },
    )
    .mix(&schema);
    let disks = 1 + (seed % 24) as u32;
    Warlock::builder()
        .schema(schema)
        .system(SystemConfig::default_2001(disks))
        .mix(mix)
        .parallelism(workers)
        .build()
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_run_is_bit_identical_to_serial(
        seed in 0u64..4096,
        workers in 2usize..9,
    ) {
        let serial = session_for(seed, 1).run().unwrap();
        let parallel = session_for(seed, workers).run().unwrap();
        // Full structural equality: same ranking order, same excluded
        // candidates with the same reasons, same per-query costs.
        prop_assert_eq!(&serial, &parallel);
        // And bit-identical floats, not merely approximately equal.
        for (a, b) in serial.ranked.iter().zip(&parallel.ranked) {
            prop_assert_eq!(a.cost.response_ms.to_bits(), b.cost.response_ms.to_bits());
            prop_assert_eq!(a.cost.io_cost_ms.to_bits(), b.cost.io_cost_ms.to_bits());
            for (qa, qb) in a.cost.per_query.iter().zip(&b.cost.per_query) {
                prop_assert_eq!(qa.response_ms.to_bits(), qb.response_ms.to_bits());
                prop_assert_eq!(qa.busy_ms.to_bits(), qb.busy_ms.to_bits());
            }
        }
    }

    #[test]
    fn what_if_variations_agree_across_worker_counts(
        seed in 0u64..1024,
        workers in 2usize..7,
    ) {
        let serial = session_for(seed, 1);
        let parallel = session_for(seed, workers);
        let (sr, sd) = serial.what_if_disks(32).unwrap();
        let (pr, pd) = parallel.what_if_disks(32).unwrap();
        prop_assert_eq!(sr, pr);
        prop_assert_eq!(sd, pd);
        let (sr, _) = serial.what_if_fixed_prefetch(8).unwrap();
        let (pr, _) = parallel.what_if_fixed_prefetch(8).unwrap();
        prop_assert_eq!(sr, pr);
    }

    #[test]
    fn warm_cache_reruns_are_identical_and_skip_work(
        seed in 0u64..1024,
    ) {
        let s = session_for(seed, 0);
        let cold = s.rank().unwrap().clone();
        let (first, _) = s.what_if_disks(48).unwrap();
        let misses_after_first = s.cache_stats().misses;
        let (second, _) = s.what_if_disks(48).unwrap();
        prop_assert_eq!(&first, &second);
        // A warm re-run must not re-cost anything.
        prop_assert_eq!(s.cache_stats().misses, misses_after_first);
        // The warm session still reproduces its own baseline exactly.
        prop_assert_eq!(&cold, &s.run().unwrap());
    }
}
