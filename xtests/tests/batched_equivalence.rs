//! Batched-vs-scalar costing equivalence: [`evaluate_chunk_with`] over
//! any chunking of a candidate stream must reproduce the scalar
//! `CostModel::evaluate_layout` **bit for bit** — aggregates and
//! per-class detail — for arbitrary valid schemas, mixes and systems,
//! at any chunk size (including single-candidate chunks), and across a
//! session-cache hit/miss boundary, where one chunk mixes candidates
//! served from the memo with candidates costed fresh by the batch path.

use proptest::prelude::*;

use warlock::prelude::*;
use warlock_bitmap::{BitmapScheme, SchemeConfig};
use warlock_cost::{
    evaluate_chunk_kernel, evaluate_chunk_with, CandidateCost, ChunkBatch, CostModel, CostTables,
    KernelBackend, KernelChoice, PerQueryDetail,
};
use warlock_fragment::{enumerate_candidates_ranged, FragmentLayout, Fragmentation, LayoutScratch};
use warlock_schema::{random_schema, RandomSchemaConfig, StarSchema};
use warlock_workload::{GeneratorConfig, QueryMix, WorkloadGenerator};

fn random_inputs(seed: u64) -> (StarSchema, QueryMix, SystemConfig) {
    let schema = random_schema(
        seed,
        RandomSchemaConfig {
            dimensions: (1, 4),
            depth: (1, 3),
            ..Default::default()
        },
    )
    .unwrap();
    let mix = WorkloadGenerator::new(
        seed.wrapping_mul(0x9e37_79b9),
        GeneratorConfig {
            num_classes: 4,
            max_dimensionality: 3,
            range_probability: 0.25,
        },
    )
    .mix(&schema);
    let system = SystemConfig::default_2001(1 + (seed % 24) as u32);
    (schema, mix, system)
}

/// Candidates whose fragment count fits the layout's `u64`, capped so a
/// wide random schema cannot blow the test up.
fn candidate_sample(schema: &StarSchema, range_options: &[u64]) -> Vec<Fragmentation> {
    enumerate_candidates_ranged(schema, 2, range_options)
        .into_iter()
        .filter(|f| f.num_fragments(schema) <= u128::from(u64::MAX))
        .take(300)
        .collect()
}

fn assert_cost_bits(batched: &CandidateCost, scalar: &CandidateCost) {
    assert_eq!(batched, scalar);
    assert_eq!(batched.io_cost_ms.to_bits(), scalar.io_cost_ms.to_bits());
    assert_eq!(batched.response_ms.to_bits(), scalar.response_ms.to_bits());
    assert_eq!(batched.total_ios.to_bits(), scalar.total_ios.to_bits());
    assert_eq!(batched.total_pages.to_bits(), scalar.total_pages.to_bits());
    assert_eq!(batched.per_query.len(), scalar.per_query.len());
    for (b, s) in batched.per_query.iter().zip(&scalar.per_query) {
        assert_eq!(b.busy_ms.to_bits(), s.busy_ms.to_bits());
        assert_eq!(b.per_fragment_ms.to_bits(), s.per_fragment_ms.to_bits());
        assert_eq!(b.response_ms.to_bits(), s.response_ms.to_bits());
        assert_eq!(b.total_ios.to_bits(), s.total_ios.to_bits());
        assert_eq!(b.fact_pages.to_bits(), s.fact_pages.to_bits());
        assert_eq!(b.bitmap_pages.to_bits(), s.bitmap_pages.to_bits());
        assert_eq!(
            b.fragments_accessed.to_bits(),
            s.fragments_accessed.to_bits()
        );
    }
}

fn assert_reports_bit_identical(a: &warlock::AdvisorReport, b: &warlock::AdvisorReport) {
    assert_eq!(a, b);
    for (ra, rb) in a.ranked.iter().zip(&b.ranked) {
        assert_eq!(ra.cost.response_ms.to_bits(), rb.cost.response_ms.to_bits());
        assert_eq!(ra.cost.io_cost_ms.to_bits(), rb.cost.io_cost_ms.to_bits());
        for (qa, qb) in ra.cost.per_query.iter().zip(&rb.cost.per_query) {
            assert_eq!(qa.response_ms.to_bits(), qb.response_ms.to_bits());
            assert_eq!(qa.busy_ms.to_bits(), qb.busy_ms.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any chunking of the candidate stream — including chunk size 1 —
    /// prices every candidate bit-identically to the scalar path, with
    /// full per-class detail.
    #[test]
    fn batched_chunks_match_scalar_bit_for_bit(
        seed in 0u64..4096,
        chunk_pick in 0usize..4,
        ranged in any::<bool>(),
    ) {
        let chunk = [1usize, 2, 7, 64][chunk_pick];
        let (schema, mix, system) = random_inputs(seed);
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        let model = CostModel::new(&schema, &system, &scheme, &mix);
        let range_options: &[u64] = if ranged { &[2, 3, 5] } else { &[] };
        let tables = CostTables::build(&model, range_options);
        let candidates = candidate_sample(&schema, range_options);

        let mut scratch = LayoutScratch::new();
        let mut batch = ChunkBatch::new();
        for group in candidates.chunks(chunk) {
            for frag in group {
                let layout = FragmentLayout::new_in(
                    &mut scratch,
                    &schema,
                    frag.clone(),
                    model.fact_index(),
                );
                batch.push(layout, &mut scratch);
            }
            let batched = evaluate_chunk_with(&tables, &mut batch, PerQueryDetail::Full);
            prop_assert!(batch.is_empty());
            prop_assert_eq!(batched.len(), group.len());
            for (b, frag) in batched.iter().zip(group) {
                let layout = FragmentLayout::new(&schema, frag.clone(), model.fact_index());
                assert_cost_bits(b, &model.evaluate_layout(&layout));
            }
        }
    }

    /// Every costing kernel backend — the scalar reference, the
    /// portable lane-array path, and whatever CPU detection picks
    /// (AVX2 on capable hardware) — prices every candidate
    /// bit-identically to the scalar `CostModel` path at every chunk
    /// size, with full per-class detail.
    #[test]
    fn every_backend_matches_scalar_bit_for_bit(
        seed in 0u64..4096,
        chunk_pick in 0usize..4,
        ranged in any::<bool>(),
    ) {
        let chunk = [1usize, 2, 7, 64][chunk_pick];
        let (schema, mix, system) = random_inputs(seed);
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        let model = CostModel::new(&schema, &system, &scheme, &mix);
        let range_options: &[u64] = if ranged { &[2, 3, 5] } else { &[] };
        let tables = CostTables::build(&model, range_options);
        let candidates = candidate_sample(&schema, range_options);

        let backends = [
            KernelBackend::resolve(KernelChoice::Scalar),
            KernelBackend::resolve(KernelChoice::Lanes),
            // On AVX2 hardware this is the intrinsics backend; elsewhere
            // it degrades to the lane-array path (still a valid run).
            KernelBackend::resolve(KernelChoice::Avx2),
        ];
        for backend in backends {
            let mut scratch = LayoutScratch::new();
            let mut batch = ChunkBatch::new();
            for group in candidates.chunks(chunk) {
                for frag in group {
                    let layout = FragmentLayout::new_in(
                        &mut scratch,
                        &schema,
                        frag.clone(),
                        model.fact_index(),
                    );
                    batch.push(layout, &mut scratch);
                }
                let batched =
                    evaluate_chunk_kernel(&tables, &mut batch, PerQueryDetail::Full, backend);
                prop_assert!(batch.is_empty());
                prop_assert_eq!(batched.len(), group.len());
                for (b, frag) in batched.iter().zip(group) {
                    let layout = FragmentLayout::new(&schema, frag.clone(), model.fact_index());
                    assert_cost_bits(b, &model.evaluate_layout(&layout));
                }
            }
        }
    }

    /// The lean detail level the ranking pipeline uses keeps every
    /// aggregate bit-identical while leaving `per_query` empty.
    #[test]
    fn omitted_detail_keeps_aggregates_bit_identical(
        seed in 0u64..4096,
        ranged in any::<bool>(),
    ) {
        let (schema, mix, system) = random_inputs(seed);
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        let model = CostModel::new(&schema, &system, &scheme, &mix);
        let range_options: &[u64] = if ranged { &[2, 3, 5] } else { &[] };
        let tables = CostTables::build(&model, range_options);

        let mut scratch = LayoutScratch::new();
        let mut batch = ChunkBatch::new();
        for frag in candidate_sample(&schema, range_options) {
            let layout = FragmentLayout::new_in(
                &mut scratch,
                &schema,
                frag.clone(),
                model.fact_index(),
            );
            batch.push(layout, &mut scratch);
            let lean = evaluate_chunk_with(&tables, &mut batch, PerQueryDetail::Omit);
            let scalar = model.evaluate(&frag);
            prop_assert!(lean[0].per_query.is_empty());
            prop_assert_eq!(lean[0].io_cost_ms.to_bits(), scalar.io_cost_ms.to_bits());
            prop_assert_eq!(lean[0].response_ms.to_bits(), scalar.response_ms.to_bits());
            prop_assert_eq!(lean[0].total_ios.to_bits(), scalar.total_ios.to_bits());
            prop_assert_eq!(lean[0].total_pages.to_bits(), scalar.total_pages.to_bits());
            prop_assert_eq!(&lean[0].fragmentation, &scalar.fragmentation);
        }
    }

    /// Widening `max_dimensionality` after a cold run keeps the run
    /// fingerprint (it is not a cost-model input), so the second run's
    /// chunks span the cache boundary: dimension-≤1 candidates come out
    /// of the memo while the new dimension-2 candidates go through the
    /// batched evaluator — and the report must match a fully cold
    /// session at the widened config, bit for bit.
    #[test]
    fn chunks_spanning_the_cache_boundary_stay_bit_identical(
        seed in 0u64..1024,
        workers in 1usize..4,
        chunk_pick in 0usize..3,
    ) {
        let chunk = [1usize, 17, 100_000][chunk_pick];
        let session_at = |max_dimensionality: usize| {
            let (schema, mix, system) = random_inputs(seed);
            Warlock::builder()
                .schema(schema)
                .system(system)
                .mix(mix)
                .config(AdvisorConfig {
                    max_dimensionality,
                    ..Default::default()
                })
                .parallelism(workers)
                .chunk_size(chunk)
                .build()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
        };

        let mut session = session_at(1);
        let narrow = session.run().unwrap();
        let hits_after_narrow = session.cache_stats().hits;

        session
            .set_config(AdvisorConfig {
                max_dimensionality: 2,
                ..Default::default()
            })
            .unwrap();
        let spanning = session.run().unwrap();
        // Every candidate of the narrow space must have been served from
        // the cache the narrow run populated.
        prop_assert_eq!(
            session.cache_stats().hits,
            hits_after_narrow + narrow.enumerated as u64
        );
        // Single-dimension schemas have nothing to widen into; every
        // other seed actually spans the boundary.
        prop_assert!(spanning.enumerated >= narrow.enumerated);

        let cold = session_at(2).run().unwrap();
        assert_reports_bit_identical(&spanning, &cold);
    }

    /// Full sessions pinned to each kernel backend — including a run
    /// spanning the session-cache hit/miss boundary, where memoized and
    /// freshly costed candidates mix in one chunk — produce reports
    /// bit-identical to the forced-scalar session.
    #[test]
    fn forced_backends_agree_across_the_cache_boundary(
        seed in 0u64..1024,
        chunk_pick in 0usize..3,
    ) {
        let chunk = [1usize, 17, 100_000][chunk_pick];
        let run_with = |choice: KernelChoice| {
            let (schema, mix, system) = random_inputs(seed);
            let mut session = Warlock::builder()
                .schema(schema)
                .system(system)
                .mix(mix)
                .config(AdvisorConfig {
                    max_dimensionality: 1,
                    ..Default::default()
                })
                .kernel(choice)
                .chunk_size(chunk)
                .build()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let _ = session.run().unwrap();
            // Widen so the second run's chunks mix cache hits (the
            // narrow space) with fresh batched evaluations.
            session
                .set_config(AdvisorConfig {
                    max_dimensionality: 2,
                    kernel: choice,
                    ..Default::default()
                })
                .unwrap();
            session.run().unwrap()
        };

        let scalar = run_with(KernelChoice::Scalar);
        for choice in [KernelChoice::Lanes, KernelChoice::Avx2, KernelChoice::Auto] {
            let report = run_with(choice);
            assert_reports_bit_identical(&report, &scalar);
        }
    }
}
