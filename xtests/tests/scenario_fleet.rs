//! Cross-crate tests of the scenario-fleet harness: reproducibility of
//! the exact report fields, the canary-tripped diff gate, and the
//! config-file materialization path (`Warlock::from_config_path`).

use warlock::Warlock;
use warlock_bench::fleet::{
    apply_canary, diff_reports, fleet_fingerprint, run_fleet, DiffOptions, FleetReport,
    SCHEMA_VERSION,
};
use warlock_scenarios::{generate_fleet, ScenarioSpace};

/// Same seed ⇒ identical fingerprints, invariant results and exact
/// per-scenario fields, across independent harness runs.
#[test]
fn fleet_runs_are_reproducible() {
    let space = ScenarioSpace::default();
    let a = run_fleet(42, 12, &space).unwrap();
    let b = run_fleet(42, 12, &space).unwrap();
    assert_eq!(a.schema_version, SCHEMA_VERSION);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.failures, b.failures);
    assert!(a.failures.is_empty(), "{:?}", a.failures);
    for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.candidates, y.candidates);
        assert_eq!(x.fragments, y.fragments);
        assert_eq!(x.disks, y.disks);
    }
    // The fingerprint is a pure function of the generated fleet.
    let fleet = generate_fleet(42, 12, &space);
    assert_eq!(a.fingerprint, fleet_fingerprint(&fleet));
}

/// The report survives its JSON wire form, and an injected slowdown is
/// caught by the diff gate while a self-diff passes.
#[test]
fn diff_gate_catches_injected_slowdown() {
    let report = run_fleet(7, 8, &ScenarioSpace::default()).unwrap();
    let reparsed = FleetReport::from_json_str(&report.to_json_string()).unwrap();
    assert_eq!(reparsed.fingerprint, report.fingerprint);
    assert_eq!(reparsed.scenarios, report.scenarios);

    let strict = DiffOptions::strict(0.5);
    assert!(diff_reports(&report, &reparsed, &strict).unwrap().passed());

    let mut slowed = reparsed;
    apply_canary(&mut slowed, 10.0);
    let outcome = diff_reports(&report, &slowed, &strict).unwrap();
    assert!(!outcome.passed());
    assert!(outcome
        .regressions
        .iter()
        .any(|r| r.contains("rank_ms_p99")));

    // A different fleet is incomparable, not silently diffed.
    let other = run_fleet(8, 8, &ScenarioSpace::default()).unwrap();
    assert!(diff_reports(&report, &other, &strict)
        .unwrap_err()
        .contains("fleet mismatch"));
}

/// A generated scenario written to disk materializes through the
/// config-file entry point into an equivalent session.
#[test]
fn scenarios_materialize_from_config_files() {
    let fleet = generate_fleet(123, 6, &ScenarioSpace::default());
    let dir = std::env::temp_dir().join(format!("warlock-fleet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for scenario in &fleet {
        let path = dir.join(format!("{}.cfg", scenario.id));
        std::fs::write(&path, scenario.config_string()).unwrap();
        let from_file = Warlock::from_config_path(&path).unwrap();
        let direct = scenario.session().unwrap();
        assert_eq!(from_file.schema(), direct.schema());
        assert_eq!(from_file.system(), direct.system());
        assert_eq!(from_file.config(), direct.config());
        assert_eq!(
            from_file.candidate_space_size(),
            direct.candidate_space_size()
        );
        // Both paths produce the same ranking. Costs agree to ulp
        // precision only: the config file stores *normalized* mix
        // shares, and re-normalizing on parse can shift each share by
        // one ulp — structure and ordering must still be identical.
        let a = from_file.rank().unwrap();
        let b = direct.rank().unwrap();
        assert_eq!(a.enumerated, b.enumerated, "{}", scenario.label());
        assert_eq!(a.evaluated, b.evaluated, "{}", scenario.label());
        assert_eq!(a.ranked.len(), b.ranked.len(), "{}", scenario.label());
        for (x, y) in a.ranked.iter().zip(&b.ranked) {
            assert_eq!(x.label, y.label, "{}", scenario.label());
            assert_eq!(x.cost.fragmentation, y.cost.fragmentation);
            assert_eq!(x.cost.num_fragments, y.cost.num_fragments);
            let rel = (x.cost.response_ms - y.cost.response_ms).abs()
                / y.cost.response_ms.abs().max(1e-12);
            assert!(
                rel < 1e-9,
                "{}: {} vs {}",
                scenario.label(),
                x.cost.response_ms,
                y.cost.response_ms
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
