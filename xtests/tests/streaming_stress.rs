//! Large-schema stress lane: deep hierarchies and ranged enumeration
//! whose candidate spaces would have exhausted memory under the old
//! materialized pipeline. The streaming engine must either advise
//! within the configured candidate budget or fail **up front** with the
//! typed `WarlockError::CandidateBudget` — and fragment counts that
//! overflow `u64` must surface as typed exclusions/errors, never as
//! wrapped values or panics.
//!
//! CI runs this file in release mode (the streaming lane); it stays
//! fast because over-budget runs fail from the exact space predictor
//! before generating a single candidate, and overflowing candidates are
//! pre-excluded before any layout or cost work.

use warlock::prelude::*;
use warlock::WarlockError;
use warlock_fragment::{CandidateError, CandidateSource, Fragmentation};
use warlock_schema::{Dimension, FactTable, StarSchema};
use warlock_workload::{DimensionPredicate, QueryClass, QueryMix};

/// A deep-hierarchy warehouse: 6 dimensions × 6 levels each. The point
/// space at dimensionality 6 is (6+1)^6 = 117 649 candidates; with
/// ranged enumeration it grows far beyond anything worth materializing.
fn deep_schema() -> StarSchema {
    let mut builder = StarSchema::builder();
    for d in 0..6 {
        let mut dim = Dimension::builder(format!("dim{d}"));
        let mut cardinality = 1u64;
        for l in 0..6 {
            cardinality *= 4; // fan-out 4 per level => bottom 4096
            dim = dim.level(format!("l{l}"), cardinality);
        }
        builder = builder.dimension(dim.build().unwrap());
    }
    builder
        .fact(
            FactTable::builder("facts")
                .measure("m", 8)
                .rows(100_000_000)
                .build(),
        )
        .build()
        .unwrap()
}

/// A synthetic schema whose full cross product overflows `u64`:
/// 5 dimensions with a 100 000-member bottom level each → 10^25
/// fragments, far past `u64::MAX` ≈ 1.8·10^19.
fn overflowing_schema() -> StarSchema {
    let mut builder = StarSchema::builder();
    for d in 0..5 {
        builder = builder.dimension(
            Dimension::builder(format!("dim{d}"))
                .level("top", 100)
                .level("bottom", 100_000)
                .build()
                .unwrap(),
        );
    }
    builder
        .fact(
            FactTable::builder("facts")
                .measure("m", 8)
                .rows(10_000_000)
                .build(),
        )
        .build()
        .unwrap()
}

fn mix_for(schema: &StarSchema) -> QueryMix {
    let mix = QueryMix::builder()
        .class(
            QueryClass::new("q0").with(0, DimensionPredicate::point(0)),
            2.0,
        )
        .class(
            QueryClass::new("q1")
                .with(1, DimensionPredicate::point(0))
                .with(2, DimensionPredicate::point(0)),
            1.0,
        )
        .build()
        .unwrap();
    mix.validate(schema).unwrap();
    mix
}

fn session(schema: StarSchema, config: AdvisorConfig) -> Warlock {
    let mix = mix_for(&schema);
    Warlock::builder()
        .schema(schema)
        .system(SystemConfig::default_2001(16))
        .mix(mix)
        .config(config)
        .build()
        .unwrap()
}

#[test]
fn deep_hierarchy_over_budget_fails_up_front_instead_of_grinding() {
    let schema = deep_schema();
    let expected_space = CandidateSource::ranged(&schema, 6, &[2]).space_size();
    assert!(expected_space > 1_000_000, "space is {expected_space}");
    let s = session(
        schema,
        AdvisorConfig {
            max_dimensionality: 6,
            range_options: vec![2],
            max_candidates: 1_000_000,
            ..Default::default()
        },
    );
    let started = std::time::Instant::now();
    let err = s.rank().unwrap_err();
    assert_eq!(
        err,
        WarlockError::CandidateBudget {
            space: expected_space,
            budget: 1_000_000
        }
    );
    assert_eq!(err.kind(), "candidate_budget");
    // The exact predictor fires before enumeration: over-budget runs
    // must not cost a noticeable amount of work.
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "budget check took {:?}",
        started.elapsed()
    );
}

#[test]
fn deep_hierarchy_within_budget_streams_to_a_ranking() {
    // The same deep warehouse constrained to 2 fragmentation dimensions
    // is 1 + 36 + 540 = 577 candidates: the budget admits it and the
    // streaming pipeline advises normally, with a small chunk size.
    let s = session(
        deep_schema(),
        AdvisorConfig {
            max_dimensionality: 2,
            max_candidates: 1_000,
            chunk_size: 16,
            ..Default::default()
        },
    );
    assert_eq!(s.candidate_space_size(), 577);
    let report = s.rank().unwrap();
    assert_eq!(report.enumerated, 577);
    assert_eq!(report.evaluated + report.excluded.total(), 577);
    assert!(report.top().is_some());
}

#[test]
fn u64_overflowing_fragment_counts_are_typed_exclusions_not_wraps() {
    let schema = overflowing_schema();
    // The full 5-dimensional bottom-level cross product: 10^25 fragments.
    let monster = Fragmentation::from_pairs(&[(0, 1), (1, 1), (2, 1), (3, 1), (4, 1)]).unwrap();
    assert!(monster.num_fragments(&schema) > u128::from(u64::MAX));

    let s = session(
        schema,
        AdvisorConfig {
            max_dimensionality: 5,
            ..Default::default()
        },
    );
    // The pipeline pre-excludes the overflowing candidates with the
    // typed reason carrying the exact u128 count…
    let report = s.rank().unwrap();
    assert!(report.excluded.count_of("fragment_count_overflow") > 0);
    let overflow_sample = report
        .excluded
        .samples()
        .find(|e| e.reason.kind() == "fragment_count_overflow")
        .expect("overflow samples are retained");
    match overflow_sample.reason {
        warlock_fragment::Exclusion::FragmentCountOverflow { fragments } => {
            assert!(fragments > u128::from(u64::MAX), "exact count: {fragments}");
        }
        other => panic!("wrong reason {other:?}"),
    }

    // …and every single-candidate entry point reports the typed error
    // instead of panicking or truncating.
    let expected = WarlockError::Candidate(CandidateError::FragmentOverflow {
        fragments: monster.num_fragments(s.schema()),
    });
    assert_eq!(s.evaluate(&monster).unwrap_err(), expected);
    assert_eq!(s.analyze_candidate(&monster).unwrap_err(), expected);
    assert_eq!(s.plan_candidate(&monster).unwrap_err(), expected);
}

#[test]
fn ranged_enumeration_under_budget_is_exact() {
    // Ranged enumeration multiplies the space; the budget check uses
    // the exact ranged predictor, so a budget equal to the space admits
    // the run and a budget one below rejects it.
    let schema = deep_schema();
    let space = CandidateSource::ranged(&schema, 1, &[2]).space_size();
    let base = AdvisorConfig {
        max_dimensionality: 1,
        range_options: vec![2],
        ..Default::default()
    };

    let admit = session(
        schema.clone(),
        AdvisorConfig {
            max_candidates: u64::try_from(space).unwrap(),
            ..base.clone()
        },
    );
    let report = admit.rank().unwrap();
    assert_eq!(report.enumerated as u128, space);

    let reject = session(
        schema,
        AdvisorConfig {
            max_candidates: u64::try_from(space).unwrap() - 1,
            ..base
        },
    );
    assert!(matches!(
        reject.rank().unwrap_err(),
        WarlockError::CandidateBudget { .. }
    ));
}
