//! Property tests for the co-access graph partitioning backend.
//!
//! The partitioner promises three things no matter what workload it is
//! handed: every fragment lands on exactly one in-bounds disk, equal
//! inputs yield byte-identical allocations (at any evaluation worker
//! count), and a graph without co-access signal degrades to the
//! paper's greedy size-based placement.

use proptest::prelude::*;

use warlock::prelude::*;
use warlock_alloc::{
    greedy_by_size, partition_coaccess, AllocationPolicy, AllocationScheme, CoAccessGraph,
};

/// A random co-access workload: fragment sizes plus query groups with
/// joint heats, ready to feed the graph builder.
#[derive(Debug, Clone)]
struct ArbWorkload {
    sizes: Vec<u64>,
    groups: Vec<(Vec<u32>, f64)>,
}

fn arb_workload() -> impl Strategy<Value = ArbWorkload> {
    proptest::collection::vec(1u64..5_000, 2..120).prop_flat_map(|sizes| {
        let n = sizes.len() as u32;
        let group = (
            proptest::collection::vec(0..n, 2..8),
            0.01f64..10.0, // joint heat
        );
        proptest::collection::vec(group, 0..24).prop_map(move |groups| ArbWorkload {
            sizes: sizes.clone(),
            groups,
        })
    })
}

fn build_graph(w: &ArbWorkload) -> CoAccessGraph {
    let mut b = CoAccessGraph::builder(w.sizes.clone());
    for (frags, heat) in &w.groups {
        b.add_group(frags, *heat);
        for &f in frags {
            b.add_heat(f, *heat);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn covers_every_fragment_exactly_once_within_bounds(
        w in arb_workload(),
        disks in 1u32..16,
        seed in any::<u64>(),
    ) {
        let part = partition_coaccess(&build_graph(&w), disks, seed);
        prop_assert_eq!(part.num_fragments(), w.sizes.len());
        prop_assert!(part.placements().iter().all(|&d| d < disks));
        // The per-disk counts re-derive the placements: no fragment is
        // counted twice or dropped.
        let total: u32 = part.fragment_counts().iter().sum();
        prop_assert_eq!(total as usize, w.sizes.len());
        let bytes: u64 = part.occupancy().iter().sum();
        prop_assert_eq!(bytes, w.sizes.iter().sum::<u64>());
    }

    #[test]
    fn same_inputs_yield_byte_identical_allocations(
        w in arb_workload(),
        disks in 1u32..16,
        seed in any::<u64>(),
    ) {
        let a = partition_coaccess(&build_graph(&w), disks, seed);
        let b = partition_coaccess(&build_graph(&w), disks, seed);
        prop_assert_eq!(a.placements(), b.placements());
        prop_assert_eq!(a.scheme(), b.scheme());
    }

    #[test]
    fn edgeless_graphs_degrade_to_greedy(
        sizes in proptest::collection::vec(1u64..5_000, 1..80),
        disks in 1u32..16,
        seed in any::<u64>(),
    ) {
        // No groups at all: the builder emits zero edges.
        let g = CoAccessGraph::builder(sizes.clone()).build();
        prop_assert_eq!(g.num_edges(), 0);
        let part = partition_coaccess(&g, disks, seed);
        prop_assert_eq!(part.scheme(), AllocationScheme::GreedySize);
        let greedy = greedy_by_size(sizes, disks);
        prop_assert_eq!(part.placements(), greedy.placements());
    }
}

/// Worker count is an execution knob, never an advice knob: the graph
/// allocation must be bit-identical whether candidates are evaluated
/// serially or on a pool.
#[test]
fn graph_allocation_is_identical_at_any_worker_count() {
    let plan_at = |workers: usize| {
        let session = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .allocation_policy(AllocationPolicy::GraphPartition { seed: 42 })
            .parallelism(workers)
            .build()
            .unwrap();
        session.plan_allocation(1).unwrap()
    };
    let serial = plan_at(1);
    assert_eq!(serial.allocation.scheme(), AllocationScheme::GraphPartition);
    for workers in [2, 4, 8] {
        let pooled = plan_at(workers);
        assert_eq!(
            serial.allocation.placements(),
            pooled.allocation.placements(),
            "allocation diverged at {workers} workers"
        );
        assert_eq!(serial.label, pooled.label);
    }
}
