//! Integration tests for the owned `Warlock` session facade: builder
//! validation, the unified `WarlockError` surface, and JSON round-trips.

use warlock::prelude::*;

fn schema() -> StarSchema {
    apb1_like_schema(Apb1Config::default()).unwrap()
}

fn mix() -> QueryMix {
    apb1_like_mix().unwrap()
}

fn system() -> SystemConfig {
    SystemConfig::default_2001(16)
}

// ----------------------------------------------------------------------
// Builder validation → error variants.

#[test]
fn missing_schema_is_reported_first() {
    let e = Warlock::builder()
        .system(system())
        .mix(mix())
        .build()
        .unwrap_err();
    assert_eq!(e, WarlockError::MissingInput { what: "schema" });
    assert!(e.to_string().contains("schema"));
}

#[test]
fn missing_system_is_reported() {
    let e = Warlock::builder()
        .schema(schema())
        .mix(mix())
        .build()
        .unwrap_err();
    assert_eq!(e, WarlockError::MissingInput { what: "system" });
}

#[test]
fn missing_mix_is_reported() {
    let e = Warlock::builder()
        .schema(schema())
        .system(system())
        .build()
        .unwrap_err();
    assert_eq!(e, WarlockError::MissingInput { what: "mix" });
}

#[test]
fn invalid_advisor_config_is_a_config_error() {
    for bad in [
        AdvisorConfig {
            top_n: 0,
            ..Default::default()
        },
        AdvisorConfig {
            top_x_percent: 0.0,
            ..Default::default()
        },
        AdvisorConfig {
            min_keep: 0,
            ..Default::default()
        },
        AdvisorConfig {
            fact_index: 99,
            ..Default::default()
        },
    ] {
        let e = Warlock::builder()
            .schema(schema())
            .system(system())
            .mix(mix())
            .config(bad.clone())
            .build()
            .unwrap_err();
        assert!(matches!(e, WarlockError::Config(_)), "{bad:?} gave {e}");
    }
}

#[test]
fn invalid_system_is_a_system_error() {
    let mut bad = system();
    bad.disk.transfer_mb_per_s = 0.0;
    let e = Warlock::builder()
        .schema(schema())
        .system(bad)
        .mix(mix())
        .build()
        .unwrap_err();
    assert!(matches!(e, WarlockError::System(_)));
}

#[test]
fn skew_coverage_failure_is_a_skew_error() {
    // 1 skew config for 4 dimensions.
    let e = Warlock::builder()
        .schema(schema())
        .system(system())
        .mix(mix())
        .config(AdvisorConfig {
            skew: Some(vec![DimensionSkew::UNIFORM]),
            ..Default::default()
        })
        .build()
        .unwrap_err();
    match e {
        WarlockError::Skew(msg) => assert!(msg.contains("4 dimensions"), "{msg}"),
        other => panic!("expected Skew, got {other}"),
    }
}

#[test]
fn mismatched_mix_is_a_workload_error() {
    // A mix referencing a dimension the schema does not have.
    let tiny = StarSchema::builder()
        .dimension(Dimension::builder("d").level("a", 4).build().unwrap())
        .fact(FactTable::builder("f").measure("m", 8).rows(10_000).build())
        .build()
        .unwrap();
    let e = Warlock::builder()
        .schema(tiny)
        .system(system())
        .mix(mix())
        .build()
        .unwrap_err();
    assert!(matches!(e, WarlockError::Workload(_)));
}

// ----------------------------------------------------------------------
// `?` ergonomics: every substrate error converts into WarlockError.

#[test]
fn substrate_errors_flow_through_question_mark() {
    fn build_everything() -> Result<Warlock, WarlockError> {
        // SchemaError → WarlockError.
        let schema = apb1_like_schema(Apb1Config::default())?;
        // WorkloadError → WarlockError.
        let mix = apb1_like_mix()?;
        // CandidateError → WarlockError (an invalid candidate).
        let _ = Fragmentation::from_pairs(&[(0, 0), (0, 1)])?;
        Warlock::builder()
            .schema(schema)
            .system(SystemConfig::default_2001(16))
            .mix(mix)
            .build()
    }
    let e = build_everything().unwrap_err();
    assert!(matches!(e, WarlockError::Candidate(_)));
}

#[test]
fn config_file_and_io_errors_unify() {
    assert!(matches!(
        Warlock::from_config_str("[dimension truncated"),
        Err(WarlockError::ConfigFile(_))
    ));
    // Path-loading errors are wrapped with the offending file name.
    let e = Warlock::from_config_path("/no/such/warlock.cfg").unwrap_err();
    assert!(matches!(e, WarlockError::AtPath { .. }));
    assert_eq!(e.kind(), "io");
    assert!(e.to_string().contains("/no/such/warlock.cfg"));
    // Json parse errors unify too.
    assert!(matches!(
        SessionReport::from_json_str("{{nope"),
        Err(WarlockError::Json(_))
    ));
}

// ----------------------------------------------------------------------
// Rank-indexed analysis errors.

#[test]
fn rank_out_of_range_names_the_bounds() {
    let session = Warlock::builder()
        .schema(schema())
        .system(system())
        .mix(mix())
        .build()
        .unwrap();
    let available = session.rank().unwrap().ranked.len();
    let e = session.analyze(available + 7).unwrap_err();
    assert_eq!(
        e,
        WarlockError::RankOutOfRange {
            rank: available + 7,
            available
        }
    );
    assert!(e.to_string().contains(&format!("1..={available}")));
}

// ----------------------------------------------------------------------
// JSON round-trips at the integration level.

#[test]
fn session_report_round_trips_and_rebuilds_candidates() {
    let session = Warlock::builder()
        .schema(schema())
        .system(system())
        .mix(mix())
        .build()
        .unwrap();
    let report = session.session_report().unwrap();
    let text = report.to_json().pretty();
    let parsed = SessionReport::from_json_str(&text).unwrap();
    assert_eq!(parsed, report);

    // The wire fragmentation of every ranked row rebuilds into the exact
    // in-memory candidate, so a remote client can ask follow-up
    // questions about any recommendation.
    for (row, ranked) in parsed
        .ranking
        .iter()
        .zip(&session.rank().unwrap().ranked.clone())
    {
        let rebuilt =
            warlock::serial::FragmentationAttr::to_fragmentation(&row.fragmentation).unwrap();
        assert_eq!(rebuilt, ranked.cost.fragmentation);
        // And re-evaluating it reproduces the serialized numbers.
        let cost = session.evaluate(&rebuilt).unwrap();
        assert!((cost.response_ms - row.response_ms).abs() < 1e-9);
    }
}

#[test]
fn json_reports_match_text_reports() {
    let session = Warlock::builder()
        .schema(schema())
        .system(system())
        .mix(mix())
        .build()
        .unwrap();
    let report = session.session_report().unwrap();
    let text = warlock::report::render_ranking(session.rank().unwrap());
    // Every ranked row's rank appears in the text table; counters agree.
    assert_eq!(report.ranking.len(), session.rank().unwrap().ranked.len());
    assert!(text.contains(&format!("{} enumerated", report.enumerated)));
    let analysis = report.analysis.as_ref().unwrap();
    assert_eq!(analysis.label, session.rank().unwrap().top().unwrap().label);
    let allocation = report.allocation.as_ref().unwrap();
    assert_eq!(allocation.disks.len(), session.system().num_disks as usize);
}

#[test]
fn tuning_deltas_serialize() {
    let session = Warlock::builder()
        .schema(schema())
        .system(system())
        .mix(mix())
        .build()
        .unwrap();
    let (_, delta) = session.what_if_disks(64).unwrap();
    let json = delta.to_json();
    assert_eq!(
        json.get("variation").unwrap().as_str().unwrap(),
        "disks = 64"
    );
    assert!(json
        .get("recommendation_changed")
        .unwrap()
        .as_bool()
        .is_some());
}
