//! Integration tests: analytical estimates against materialized ground
//! truth — real synthetic rows, real fragments, real bitmap indexes.

use warlock_bitmap::{EncodedBitmapIndex, StandardBitmapIndex};
use warlock_fragment::{FragmentLayout, Fragmentation, QueryMatch, SkewModelExt};
use warlock_schema::{Dimension, FactTable, LevelId, StarSchema};
use warlock_sim::{MaterializedWarehouse, SyntheticFact};
use warlock_skew::DimensionSkew;
use warlock_workload::{DimensionPredicate, QueryClass};

fn schema() -> StarSchema {
    StarSchema::builder()
        .dimension(
            Dimension::builder("product")
                .level("division", 4)
                .level("line", 16)
                .level("code", 128)
                .build()
                .unwrap(),
        )
        .dimension(
            Dimension::builder("time")
                .level("year", 2)
                .level("month", 24)
                .build()
                .unwrap(),
        )
        .dimension(
            Dimension::builder("channel")
                .level("base", 6)
                .build()
                .unwrap(),
        )
        .fact(
            FactTable::builder("sales")
                .measure("m", 8)
                .rows(200_000)
                .build(),
        )
        .build()
        .unwrap()
}

#[test]
fn matching_model_predicts_materialized_fragment_hits() {
    let s = schema();
    let skew = s.uniform_skew_model();
    let data = SyntheticFact::generate(&s, &skew, 200_000, 11);
    let frag = Fragmentation::from_pairs(&[(0, 1), (1, 1)]).unwrap(); // line × month
    let layout = FragmentLayout::new(&s, frag, 0);
    let warehouse = MaterializedWarehouse::build(&s, &layout, &data);

    // Query: one division (coarser than line), one year (coarser than month).
    let q = QueryClass::new("q")
        .with(0, DimensionPredicate::point(0))
        .with(1, DimensionPredicate::point(0));
    let m = QueryMatch::evaluate(&s, layout.fragmentation(), &q);
    // Expected: 4 lines × 12 months = 48 fragments.
    assert!((m.expected_fragments() - 48.0).abs() < 1e-9);

    // Ground truth: rows of division 0 and year 0 live in exactly those
    // fragments; count rows in the matched fragment set vs the predicate.
    let mut rows_in_matched = 0u64;
    for line in 0..4u64 {
        for month in 0..12u64 {
            let f = layout.index_of(&[line, month]);
            rows_in_matched += warehouse.rows_of(f).len() as u64;
        }
    }
    let rows_matching_predicate = (0..data.rows())
        .filter(|&r| data.column(0)[r] / 32 == 0 && data.column(1)[r] / 12 == 0)
        .count() as u64;
    // Coarser-than-fragmentation predicates cover whole fragments: the two
    // counts must be identical.
    assert_eq!(rows_in_matched, rows_matching_predicate);
    // And the analytical residual selectivity is exactly 1.
    assert!((m.residual_selectivity() - 1.0).abs() < 1e-12);
}

#[test]
fn selectivity_estimates_match_generated_data() {
    let s = schema();
    let skew = s.uniform_skew_model();
    let data = SyntheticFact::generate(&s, &skew, 200_000, 13);
    let q = QueryClass::new("q")
        .with(0, DimensionPredicate::point(2)) // one code of 128
        .with(2, DimensionPredicate::point(0)); // one channel of 6
    let sel = q.selectivity(&s);
    // Count rows with code 0 and channel 0.
    let hits = (0..data.rows())
        .filter(|&r| data.column(0)[r] == 0 && data.column(2)[r] == 0)
        .count() as f64;
    let expected = sel * data.rows() as f64;
    assert!(
        (hits - expected).abs() / expected < 0.3,
        "hits {hits} vs expected {expected}"
    );
}

#[test]
fn real_bitmaps_agree_with_each_other_per_fragment() {
    let s = schema();
    let skew = s.skew_model(&[
        DimensionSkew::zipf(0.5),
        DimensionSkew::UNIFORM,
        DimensionSkew::UNIFORM,
    ]);
    let data = SyntheticFact::generate(&s, &skew, 60_000, 17);
    let frag = Fragmentation::from_pairs(&[(1, 0)]).unwrap(); // by year → 2 fragments
    let layout = FragmentLayout::new(&s, frag, 0);
    let warehouse = MaterializedWarehouse::build(&s, &layout, &data);
    let (_, product) = s.dimension_by_name("product").unwrap();

    for f in 0..layout.num_fragments() {
        let column = warehouse.fragment_column(&data, f, 0);
        if column.is_empty() {
            continue;
        }
        // Standard index at the line level vs encoded index queried at the
        // line level must select identical row sets.
        let line_column: Vec<u64> = column.iter().map(|&c| c / 8).collect();
        let standard = StandardBitmapIndex::build(16, &line_column);
        let encoded = EncodedBitmapIndex::build(product, &column);
        for line in [0u64, 3, 7, 15] {
            let a = standard.bitmap_for(line);
            let b = encoded.query_level(LevelId(1), line);
            assert_eq!(a, &b, "fragment {f} line {line}");
        }
        // Division queries too (coarser prefix).
        for division in 0..4u64 {
            let div_col: Vec<u64> = column.iter().map(|&c| c / 32).collect();
            let std_div = StandardBitmapIndex::build(4, &div_col);
            assert_eq!(
                std_div.bitmap_for(division),
                &encoded.query_level(LevelId(0), division),
                "fragment {f} division {division}"
            );
        }
    }
}

#[test]
fn bitmap_query_counts_match_expected_rows() {
    let s = schema();
    let skew = s.uniform_skew_model();
    let data = SyntheticFact::generate(&s, &skew, 120_000, 19);
    let layout = FragmentLayout::new(&s, Fragmentation::from_pairs(&[(2, 0)]).unwrap(), 0);
    let warehouse = MaterializedWarehouse::build(&s, &layout, &data);
    let (_, product) = s.dimension_by_name("product").unwrap();

    // Evaluate "line = 5" through bitmaps across all fragments and compare
    // with the analytical expectation (120 000 / 16 rows).
    let mut total = 0usize;
    for f in 0..layout.num_fragments() {
        let column = warehouse.fragment_column(&data, f, 0);
        let encoded = EncodedBitmapIndex::build(product, &column);
        total += encoded.query_level(LevelId(1), 5).count_ones();
    }
    let expected = 120_000.0 / 16.0;
    assert!(
        (total as f64 - expected).abs() / expected < 0.1,
        "bitmap total {total} vs expected {expected}"
    );
}

#[test]
fn skewed_fragment_sizes_match_apportioned_estimates() {
    let s = schema();
    let skew = s.skew_model(&[
        DimensionSkew::zipf(1.0),
        DimensionSkew::UNIFORM,
        DimensionSkew::UNIFORM,
    ]);
    let rows = 150_000usize;
    let data = SyntheticFact::generate(&s, &skew, rows, 23);
    let frag = Fragmentation::from_pairs(&[(0, 0)]).unwrap(); // by division
    let layout = FragmentLayout::new(&s, frag, 0);
    let warehouse = MaterializedWarehouse::build(&s, &layout, &data);

    // The analytical model scales weights to the schema's fact rows; for
    // the comparison re-apportion to the generated row count.
    let weights = layout.fragment_weights(&s, &skew);
    let estimated = warlock_fragment::apportion(rows as u64, &weights);
    let actual = warehouse.fragment_row_counts();
    for (f, (&est, &act)) in estimated.iter().zip(&actual).enumerate() {
        let est_f = est as f64;
        assert!(
            (est_f - act as f64).abs() / est_f < 0.1,
            "fragment {f}: estimated {est} vs actual {act}"
        );
    }
    // Skew direction: division 0 clearly heavier than division 3.
    assert!(actual[0] > actual[3] * 2);
}
