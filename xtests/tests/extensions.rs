//! Integration tests for the extension features: range fragmentation end
//! to end (advisor → simulation) and heat-based allocation.

use warlock::Warlock;
use warlock_alloc::{greedy_by_heat, heat_imbalance, round_robin};
use warlock_fragment::{FragmentLayout, Fragmentation, SkewModelExt};
use warlock_schema::{apb1_like_schema, Apb1Config, Dimension, FactTable, StarSchema};
use warlock_sim::{bind_query, MaterializedWarehouse, SyntheticFact};
use warlock_storage::SystemConfig;
use warlock_workload::{apb1_like_mix, DimensionPredicate, QueryClass};

fn small_schema() -> StarSchema {
    StarSchema::builder()
        .dimension(
            Dimension::builder("product")
                .level("division", 4)
                .level("code", 64)
                .build()
                .unwrap(),
        )
        .dimension(
            Dimension::builder("time")
                .level("year", 2)
                .level("month", 24)
                .build()
                .unwrap(),
        )
        .fact(FactTable::builder("f").rows(50_000).build())
        .build()
        .unwrap()
}

#[test]
fn ranged_candidate_equivalence_holds_through_the_advisor() {
    let session = Warlock::builder()
        .schema(apb1_like_schema(Apb1Config::default()).unwrap())
        .system(SystemConfig::default_2001(16))
        .mix(apb1_like_mix().unwrap())
        .build()
        .unwrap();

    let ranged = Fragmentation::from_ranged_pairs(&[(0, 5, 10), (2, 2, 1)]).unwrap();
    let point = Fragmentation::from_pairs(&[(0, 4), (2, 2)]).unwrap();
    let a = session.evaluate(&ranged).unwrap();
    let b = session.evaluate(&point).unwrap();
    assert_eq!(a.num_fragments, b.num_fragments);
    assert!((a.io_cost_ms - b.io_cost_ms).abs() < 1e-9);
    assert!((a.response_ms - b.response_ms).abs() < 1e-9);
    // Per-class costs identical too.
    for (qa, qb) in a.per_query.iter().zip(&b.per_query) {
        assert!((qa.busy_ms - qb.busy_ms).abs() < 1e-9, "{}", qa.query_name);
        assert!(
            (qa.fragments_accessed - qb.fragments_accessed).abs() < 1e-9,
            "{}",
            qa.query_name
        );
    }
}

#[test]
fn ranged_layout_routes_and_binds_consistently() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let schema = small_schema();
    let skew = schema.uniform_skew_model();
    let data = SyntheticFact::generate(&schema, &skew, 50_000, 3);
    // code[r=16] → 4 coordinates ( = division) × month[r=12] → 2 ( = year).
    let frag = Fragmentation::from_ranged_pairs(&[(0, 1, 16), (1, 1, 12)]).unwrap();
    let layout = FragmentLayout::new(&schema, frag, 0);
    assert_eq!(layout.num_fragments(), 8);
    let warehouse = MaterializedWarehouse::build(&schema, &layout, &data);
    assert_eq!(warehouse.total_rows(), 50_000);

    // Routing must equal the parent-level routing exactly.
    let parent = Fragmentation::from_pairs(&[(0, 0), (1, 0)]).unwrap();
    let parent_layout = FragmentLayout::new(&schema, parent, 0);
    let parent_warehouse = MaterializedWarehouse::build(&schema, &parent_layout, &data);
    assert_eq!(
        warehouse.fragment_row_counts(),
        parent_warehouse.fragment_row_counts()
    );

    // Binding a division query hits exactly one coordinate per value.
    let mut rng = StdRng::seed_from_u64(5);
    let q = QueryClass::new("q").with(0, DimensionPredicate::point(0));
    let bound = bind_query(&schema, &layout, &q, &mut rng);
    assert_eq!(bound.fragments.len(), 2); // 1 division × 2 year-coordinates

    // Every bound fragment actually holds only rows of the bound division.
    let (_, _, values) = &bound.bindings[0];
    let division = values[0];
    for &f in &bound.fragments {
        for &row in warehouse.rows_of(f) {
            assert_eq!(data.column(0)[row as usize] / 16, division);
        }
    }
}

#[test]
fn heat_allocation_integrates_with_profiles() {
    use warlock_alloc::{profile_response_ms, DiskAccessProfile};

    // 48 fragments; the 8 "current" fragments draw the traffic.
    let n = 48usize;
    let heats: Vec<f64> = (0..n).map(|i| if i >= 40 { 50.0 } else { 1.0 }).collect();
    let sizes = vec![1_000u64; n];
    let heat_alloc = greedy_by_heat(&heats, sizes.clone(), 8);
    let rr_alloc = round_robin(sizes, 8);

    assert!(heat_imbalance(&heat_alloc, &heats) <= heat_imbalance(&rr_alloc, &heats));

    // A query over the hot fragments parallelizes fully on the heat-based
    // placement.
    let hot: Vec<usize> = (40..48).collect();
    let profile = DiskAccessProfile::build(&heat_alloc, &hot, 10.0);
    assert_eq!(profile.disks_hit(), 8);
    assert!((profile_response_ms(&profile, 8, 1.0) - 10.0).abs() < 1e-9);
}

#[test]
fn page_hit_model_validated_on_materialized_fragments() {
    use warlock_bitmap::{EncodedBitmapIndex, StandardBitmapIndex};
    use warlock_sim::compare_page_hits;

    let schema = small_schema();
    let skew = schema.uniform_skew_model();
    let data = SyntheticFact::generate(&schema, &skew, 40_000, 9);
    let layout = FragmentLayout::new(
        &schema,
        Fragmentation::from_pairs(&[(1, 0)]).unwrap(), // by year: 2 fragments
        0,
    );
    let warehouse = MaterializedWarehouse::build(&schema, &layout, &data);
    let (_, product) = schema.dimension_by_name("product").unwrap();

    for f in 0..layout.num_fragments() {
        let column = warehouse.fragment_column(&data, f, 0);
        let encoded = EncodedBitmapIndex::build(product, &column);
        // Selection "division = 1" (1/4 of rows): real bitmap output,
        // exact page count, vs the Yao estimate.
        let selection = encoded.query_level(warlock_schema::LevelId(0), 1);
        let comparison = compare_page_hits(&selection, 100);
        assert!(
            comparison.relative_error.abs() < 0.02,
            "fragment {f}: estimate {} vs actual {} pages",
            comparison.estimated_pages,
            comparison.actual_pages
        );
        // Sanity: standard index agrees on the selection size.
        let div_col: Vec<u64> = column.iter().map(|&c| c / 16).collect();
        let std_idx = StandardBitmapIndex::build(4, &div_col);
        assert_eq!(std_idx.bitmap_for(1).count_ones(), selection.count_ones());
    }
}

#[test]
fn config_file_round_trip_drives_identical_advice() {
    use warlock::config_file::{demo_config, render_config};

    let demo = demo_config();
    let rendered = render_config(&demo);
    let report_a = Warlock::builder()
        .schema(demo.schema)
        .system(demo.system)
        .mix(demo.mix)
        .config(demo.advisor)
        .build()
        .unwrap()
        .run()
        .unwrap();

    // The facade can consume the rendered file directly.
    let report_b = Warlock::from_config_str(&rendered).unwrap().run().unwrap();

    assert_eq!(report_a.ranked.len(), report_b.ranked.len());
    for (a, b) in report_a.ranked.iter().zip(&report_b.ranked) {
        assert_eq!(a.label, b.label);
        assert!((a.cost.response_ms - b.cost.response_ms).abs() < 1e-9);
    }
}
