//! Cross-crate property-based tests on core invariants.

use proptest::prelude::*;

use warlock_alloc::{greedy_by_size, round_robin};
use warlock_bitmap::{BitVec, RleBitmap};
use warlock_cost::{cardenas_page_hits, estimated_response_ms, yao_page_hits};
use warlock_fragment::{
    apportion, expected_distinct_groups, FragmentLayout, Fragmentation, QueryMatch, SkewModelExt,
};
use warlock_schema::{apb1_like_schema, Apb1Config, StarSchema};
use warlock_skew::ZipfWeights;
use warlock_workload::{DimensionPredicate, QueryClass};

fn schema() -> StarSchema {
    apb1_like_schema(Apb1Config::default()).unwrap()
}

/// Arbitrary valid fragmentation over the APB-1-like schema.
fn arb_fragmentation() -> impl Strategy<Value = Fragmentation> {
    // Per dimension: None or a level index.
    (
        proptest::option::of(0u16..6),
        proptest::option::of(0u16..2),
        proptest::option::of(0u16..3),
        proptest::option::of(0u16..1),
    )
        .prop_map(|(p, c, t, ch)| {
            let mut pairs = Vec::new();
            if let Some(l) = p {
                pairs.push((0u16, l));
            }
            if let Some(l) = c {
                pairs.push((1u16, l));
            }
            if let Some(l) = t {
                pairs.push((2u16, l));
            }
            if let Some(l) = ch {
                pairs.push((3u16, l));
            }
            Fragmentation::from_pairs(&pairs).unwrap()
        })
}

/// Arbitrary valid query class over the APB-1-like schema.
fn arb_query() -> impl Strategy<Value = QueryClass> {
    let dims = [
        (0u16, [5u64, 15, 75, 300, 900, 9000].as_slice()),
        (1, [90, 900].as_slice()),
        (2, [2, 8, 24].as_slice()),
        (3, [9].as_slice()),
    ];
    proptest::sample::subsequence(vec![0usize, 1, 2, 3], 1..=4).prop_flat_map(move |chosen| {
        let strategies: Vec<_> = chosen
            .into_iter()
            .map(move |d| {
                let (dim, cards) = dims[d];
                (0..cards.len()).prop_flat_map(move |level| {
                    let card = cards[level];
                    (1..=card.min(8)).prop_map(move |values| {
                        (dim, DimensionPredicate::range(level as u16, values))
                    })
                })
            })
            .collect();
        strategies.prop_map(|preds| {
            let mut q = QueryClass::new("prop");
            for (dim, pred) in preds {
                q = q.with(dim, pred);
            }
            q
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matching_never_exceeds_fragment_count(
        frag in arb_fragmentation(),
        query in arb_query(),
    ) {
        let s = schema();
        prop_assume!(frag.num_fragments(&s) <= 1 << 20);
        let m = QueryMatch::evaluate(&s, &frag, &query);
        let n = frag.num_fragments(&s) as f64;
        prop_assert!(m.expected_fragments() >= 1.0 - 1e-9);
        prop_assert!(m.expected_fragments() <= n + 1e-6);
        prop_assert!(m.residual_selectivity() > 0.0);
        prop_assert!(m.residual_selectivity() <= 1.0 + 1e-12);
    }

    #[test]
    fn selectivity_decomposition_upper_bound(
        frag in arb_fragmentation(),
        query in arb_query(),
    ) {
        // total selectivity ≤ (accessed fraction) × residual — equality
        // when all fragmentation-dimension references are coarser/equal,
        // inequality (expectation of a product vs product of expectations)
        // otherwise.
        let s = schema();
        prop_assume!(frag.num_fragments(&s) <= 1 << 20);
        let m = QueryMatch::evaluate(&s, &frag, &query);
        let n = frag.num_fragments(&s) as f64;
        let reconstructed = m.expected_fragments() / n * m.residual_selectivity();
        prop_assert!(m.total_selectivity() <= reconstructed * (1.0 + 1e-9));
    }

    #[test]
    fn apportion_conserves_any_total(
        total in 0u64..10_000_000,
        weights in proptest::collection::vec(0.001f64..100.0, 1..200),
    ) {
        let parts = apportion(total, &weights);
        prop_assert_eq!(parts.iter().sum::<u64>(), total);
        prop_assert_eq!(parts.len(), weights.len());
    }

    #[test]
    fn allocations_place_every_fragment_exactly_once(
        sizes in proptest::collection::vec(0u64..10_000, 1..300),
        disks in 1u32..64,
    ) {
        for alloc in [round_robin(sizes.clone(), disks), greedy_by_size(sizes.clone(), disks)] {
            prop_assert_eq!(alloc.num_fragments(), sizes.len());
            prop_assert_eq!(
                alloc.fragment_counts().iter().map(|&c| c as usize).sum::<usize>(),
                sizes.len()
            );
            prop_assert_eq!(
                alloc.occupancy().iter().sum::<u64>(),
                sizes.iter().sum::<u64>()
            );
        }
    }

    #[test]
    fn greedy_respects_the_lpt_bound(
        sizes in proptest::collection::vec(1u64..100_000, 1..200),
        disks in 1u32..32,
    ) {
        // LPT guarantee: max occupancy ≤ (4/3 − 1/(3m)) · OPT. Round-robin
        // carries no such guarantee (and can beat greedy on lucky random
        // orders), so the property pins greedy against the theorem, using
        // max(total/m, max size) as the classic lower bound of OPT.
        let m = f64::from(disks);
        let total: u64 = sizes.iter().sum();
        let largest = *sizes.iter().max().unwrap();
        let opt_lower = (total as f64 / m).max(largest as f64);
        let greedy = greedy_by_size(sizes, disks).occupancy_stats();
        let bound = (4.0 / 3.0 - 1.0 / (3.0 * m)) * opt_lower;
        prop_assert!(
            greedy.max_bytes as f64 <= bound + 1e-6,
            "max {} exceeds LPT bound {bound}",
            greedy.max_bytes
        );
    }

    #[test]
    fn zipf_weights_are_normalized_and_monotone(
        n in 1usize..5000,
        theta in 0.0f64..2.5,
    ) {
        let z = ZipfWeights::new(n, theta);
        let sum: f64 = z.weights().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        for w in z.weights().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-15);
        }
    }

    #[test]
    fn yao_bounds_hold(
        rows_per_page in 1u64..500,
        pages in 1u64..2000,
        frac in 0.0f64..1.0,
    ) {
        let rows = rows_per_page * pages;
        let k = frac * rows as f64;
        let hits = yao_page_hits(rows, pages, k);
        prop_assert!(hits >= 0.0);
        prop_assert!(hits <= pages as f64 + 1e-9);
        // yao_page_hits evaluates at round(k), so bound against that.
        prop_assert!(hits <= k.round() + 1e-9 || k < 1.0);
        // Cardenas is a lower bound of Yao — compared at the same rounded
        // k, since yao_page_hits evaluates at round(k).
        prop_assert!(cardenas_page_hits(pages, k.round()) <= hits + 1e-6);
    }

    #[test]
    fn occupancy_expectation_is_exact_for_group_size_one(
        q in 1u64..2000,
        n_frac in 0.0f64..1.0,
    ) {
        let n = (n_frac * q as f64) as u64;
        // f == q → every selected value is its own group.
        let e = expected_distinct_groups(q, q, n);
        prop_assert!((e - n as f64).abs() < 1e-6);
    }

    #[test]
    fn response_estimate_is_monotone_in_disks(
        fragments in 1.0f64..500.0,
        per_ms in 0.1f64..100.0,
    ) {
        let mut prev = f64::INFINITY;
        for disks in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            let rt = estimated_response_ms(fragments, per_ms, disks, 1024, 1.0);
            prop_assert!(rt <= prev + 1e-9);
            prev = rt;
        }
    }

    #[test]
    fn rle_roundtrip_and_boolean_algebra(
        bits_a in proptest::collection::vec(any::<bool>(), 1..500),
    ) {
        let len = bits_a.len();
        let mut a = BitVec::zeros(len);
        let mut b = BitVec::zeros(len);
        for (i, &bit) in bits_a.iter().enumerate() {
            a.set(i, bit);
            b.set(len - 1 - i, bit);
        }
        let ca = RleBitmap::compress(&a);
        let cb = RleBitmap::compress(&b);
        prop_assert_eq!(ca.decompress(), a.clone());
        prop_assert_eq!(ca.count_ones(), a.count_ones());
        prop_assert_eq!(ca.and(&cb).decompress(), a.and(&b));
        prop_assert_eq!(ca.or(&cb).decompress(), a.or(&b));
    }

    #[test]
    fn layout_roundtrip_random_indices(
        frag in arb_fragmentation(),
        seed in 0u64..1000,
    ) {
        let s = schema();
        prop_assume!(frag.num_fragments(&s) <= 1 << 16);
        let layout = FragmentLayout::new(&s, frag, 0);
        let n = layout.num_fragments();
        let idx = seed % n;
        prop_assert_eq!(layout.index_of(&layout.coords_of(idx)), idx);
    }

    #[test]
    fn skewed_fragment_weights_normalize(
        frag in arb_fragmentation(),
        theta in 0.0f64..1.5,
    ) {
        let s = schema();
        prop_assume!(frag.num_fragments(&s) <= 1 << 14);
        let skew = s.skew_model(&[
            warlock_skew::DimensionSkew::zipf(theta),
            warlock_skew::DimensionSkew::UNIFORM,
            warlock_skew::DimensionSkew::zipf(theta / 2.0),
            warlock_skew::DimensionSkew::UNIFORM,
        ]);
        let layout = FragmentLayout::new(&s, frag, 0);
        let w = layout.fragment_weights(&s, &skew);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!(w.iter().all(|&x| x >= 0.0));
    }
}
