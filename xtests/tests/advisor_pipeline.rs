//! Integration tests: the full advisor pipeline across crates, driven
//! through the owned `Warlock` session facade.

use warlock::prelude::*;
use warlock::storage::Architecture;

fn session_on(system: SystemConfig) -> Warlock {
    Warlock::builder()
        .schema(apb1_like_schema(Apb1Config::default()).unwrap())
        .system(system)
        .mix(apb1_like_mix().unwrap())
        .build()
        .unwrap()
}

fn session() -> Warlock {
    session_on(SystemConfig::default_2001(16))
}

#[test]
fn recommended_candidates_dominate_random_ones() {
    let session = session();
    let top = session.rank().unwrap().top().unwrap().clone();

    // The winner must beat a handful of structurally plausible but
    // unranked alternatives on response time at comparable I/O cost —
    // this pins the whole pipeline (matching → cost → ranking) together.
    for alt in [
        Fragmentation::none(),
        Fragmentation::from_pairs(&[(3, 0)]).unwrap(), // channel only
        Fragmentation::from_pairs(&[(1, 0)]).unwrap(), // retailer only
        Fragmentation::from_pairs(&[(2, 0)]).unwrap(), // year only
    ] {
        let cost = session.evaluate(&alt).unwrap();
        assert!(
            top.cost.response_ms <= cost.response_ms,
            "{} ({} ms) should not beat the winner ({} ms)",
            alt.label(session.schema()),
            cost.response_ms,
            top.cost.response_ms
        );
    }
}

#[test]
fn ranking_respects_the_twofold_contract() {
    let session = session();
    let report = session.rank().unwrap().clone();

    // Phase-2 ordering: response times ascend.
    for w in report.ranked.windows(2) {
        assert!(w[0].cost.response_ms <= w[1].cost.response_ms);
    }
    // Phase-1 filter: every ranked candidate sits in the best X% by I/O
    // cost among evaluated candidates — verify against a full re-costing.
    let all = warlock_fragment::enumerate_candidates(session.schema(), 4);
    let ctx = session.threshold_context();
    let mut io_costs: Vec<f64> = Vec::new();
    for frag in all {
        if frag.num_fragments(session.schema()) > 1u128 << 20 {
            continue;
        }
        let layout = warlock_fragment::FragmentLayout::new(session.schema(), frag, 0);
        if session.config().thresholds.check(&layout, ctx).is_ok() {
            io_costs.push(session.evaluate(layout.fragmentation()).unwrap().io_cost_ms);
        }
    }
    io_costs.sort_by(f64::total_cmp);
    let keep = ((io_costs.len() as f64 * 0.10).ceil() as usize).max(10);
    let cutoff = io_costs[keep.min(io_costs.len()) - 1];
    for r in &report.ranked {
        assert!(
            r.cost.io_cost_ms <= cutoff + 1e-6,
            "{} with io {} above phase-1 cutoff {}",
            r.label,
            r.cost.io_cost_ms,
            cutoff
        );
    }
}

#[test]
fn architectures_shared_everything_vs_shared_disk() {
    let mut system = SystemConfig::default_2001(16);
    system.architecture = Architecture::SharedEverything { processors: 16 };
    let se = session_on(system).run().unwrap();
    system.architecture = Architecture::shared_disk(4, 4); // same 16 processors
    let sd = session_on(system).run().unwrap();
    // Same processor budget: SD pays exactly the coordination overhead.
    let se_top = se.top().unwrap();
    let sd_top = sd.find(&se_top.cost.fragmentation).or(sd.top()).unwrap();
    assert!(sd_top.cost.response_ms >= se_top.cost.response_ms);
    // And the overhead is bounded by the configured 5 %.
    let same = sd.find(&se_top.cost.fragmentation);
    if let Some(same) = same {
        let ratio = same.cost.response_ms / se_top.cost.response_ms;
        assert!(ratio <= 1.05 + 1e-9, "ratio {ratio}");
    }
}

#[test]
fn disk_scaling_improves_response_monotonically() {
    // One re-entrant session: swap the system in place, as a long-lived
    // advisory service would when the hardware description changes.
    let mut session = session();
    let frag = Fragmentation::from_pairs(&[(0, 1), (2, 2)]).unwrap();
    let mut prev = f64::INFINITY;
    for disks in [2u32, 4, 8, 16, 32, 64] {
        session
            .set_system(SystemConfig::default_2001(disks))
            .unwrap();
        let rt = session.evaluate(&frag).unwrap().response_ms;
        assert!(
            rt <= prev + 1e-9,
            "{disks} disks gave {rt} ms, worse than previous {prev} ms"
        );
        prev = rt;
    }
}

#[test]
fn io_cost_is_invariant_to_disk_count() {
    // Total device work depends on the fragmentation, not on how many
    // disks it is spread over.
    let mut session = session();
    let frag = Fragmentation::from_pairs(&[(2, 2)]).unwrap();
    let costs: Vec<f64> = [4u32, 16, 64]
        .iter()
        .map(|&d| {
            session.set_system(SystemConfig::default_2001(d)).unwrap();
            session.evaluate(&frag).unwrap().io_cost_ms
        })
        .collect();
    assert!((costs[0] - costs[1]).abs() < 1e-9);
    assert!((costs[1] - costs[2]).abs() < 1e-9);
}

#[test]
fn scaled_schema_still_advises() {
    let session = Warlock::builder()
        .schema(
            apb1_like_schema(Apb1Config {
                density: 0.02,
                product_scale: 2,
                customer_scale: 2,
                months: 36,
            })
            .unwrap(),
        )
        .system(SystemConfig::default_2001(32))
        .mix(apb1_like_mix().unwrap())
        .build()
        .unwrap();
    assert!(!session.rank().unwrap().ranked.is_empty());
    // Bigger warehouse: the winner still beats the unfragmented baseline.
    let baseline = session.evaluate(&Fragmentation::none()).unwrap();
    assert!(session.rank().unwrap().top().unwrap().cost.response_ms < baseline.response_ms);
}

#[test]
fn analysis_and_plan_agree_on_structure() {
    let session = session();
    let report = session.rank().unwrap().clone();
    for r in report.ranked.iter().take(3) {
        let analysis = session.analyze(r.rank).unwrap();
        let plan = session.plan_allocation(r.rank).unwrap();
        assert_eq!(
            analysis.num_fragments,
            plan.allocation.num_fragments() as u64
        );
        assert_eq!(analysis.per_class.len(), plan.per_class.len());
        assert!((analysis.weighted_response_ms - r.cost.response_ms).abs() < 1e-9);
        // Every fragment placed on a valid disk.
        assert!(plan
            .allocation
            .placements()
            .iter()
            .all(|&d| d < session.system().num_disks));
    }
}
