//! Concurrent clone semantics of the shared-snapshot session: N clones
//! issuing interleaved what-ifs from multiple threads must produce
//! reports bit-identical to a single serial session, cross-clone cache
//! hits must actually occur, and copy-on-write mutation must never
//! disturb sibling clones.

use proptest::prelude::*;

use warlock::prelude::*;
use warlock::schema::DimensionId;
use warlock_schema::{random_schema, RandomSchemaConfig};
use warlock_workload::{GeneratorConfig, WorkloadGenerator};

fn session_for(seed: u64) -> Warlock {
    let schema = random_schema(seed, RandomSchemaConfig::default()).unwrap();
    let mix = WorkloadGenerator::new(
        seed.wrapping_mul(0x9e37_79b9),
        GeneratorConfig {
            num_classes: 4,
            max_dimensionality: 3,
            range_probability: 0.25,
        },
    )
    .mix(&schema);
    let disks = 2 + (seed % 24) as u32;
    Warlock::builder()
        .schema(schema)
        .system(SystemConfig::default_2001(disks))
        .mix(mix)
        .parallelism(1)
        .build()
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
}

/// The interleaved what-if op stream the clones race through.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Disks(u32),
    Prefetch(u32),
    NoBitmaps(u16),
}

fn apply(session: &Warlock, op: Op) -> (AdvisorReport, TuningDelta) {
    match op {
        Op::Disks(d) => session.what_if_disks(d).unwrap(),
        Op::Prefetch(p) => session.what_if_fixed_prefetch(p).unwrap(),
        Op::NoBitmaps(d) => session
            .what_if_without_bitmap_dimension(DimensionId(d))
            .unwrap(),
    }
}

const OPS: [Op; 6] = [
    Op::Disks(4),
    Op::Prefetch(2),
    Op::Disks(48),
    Op::NoBitmaps(0),
    Op::Prefetch(16),
    Op::Disks(4), // repeated on purpose: must be a pure cache hit somewhere
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N clones on N threads, each running an interleaved rotation of
    /// the op stream, must reproduce a single serial session bit for
    /// bit.
    #[test]
    fn interleaved_clone_what_ifs_match_serial(
        seed in 0u64..2048,
        clones in 2usize..5,
    ) {
        // The reference: one serial session applying every op in order.
        let serial = session_for(seed);
        let expected: Vec<(Op, AdvisorReport, TuningDelta)> = OPS
            .iter()
            .map(|&op| {
                let (report, delta) = apply(&serial, op);
                (op, report, delta)
            })
            .collect();

        // The race: clones of one fresh session, each starting the
        // rotation at a different offset so the interleaving differs
        // per thread.
        let shared = session_for(seed);
        let results: Vec<Vec<(Op, AdvisorReport, TuningDelta)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..clones)
                    .map(|offset| {
                        let clone = shared.clone();
                        scope.spawn(move || {
                            (0..OPS.len())
                                .map(|i| {
                                    let op = OPS[(i + offset) % OPS.len()];
                                    let (report, delta) = apply(&clone, op);
                                    (op, report, delta)
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

        for per_clone in &results {
            for (op, report, delta) in per_clone {
                let (_, want_report, want_delta) = expected
                    .iter()
                    .find(|(want_op, _, _)| want_op == op)
                    .expect("op in reference set");
                prop_assert_eq!(report, want_report);
                prop_assert_eq!(delta, want_delta);
                // Bit-identical floats, not merely approximately equal.
                for (a, b) in report.ranked.iter().zip(&want_report.ranked) {
                    prop_assert_eq!(a.cost.response_ms.to_bits(), b.cost.response_ms.to_bits());
                    prop_assert_eq!(a.cost.io_cost_ms.to_bits(), b.cost.io_cost_ms.to_bits());
                }
            }
        }
        // The racing family ran every distinct op at least once per
        // clone, yet the shared cache holds exactly one entry set per
        // distinct variation: repeats were hits.
        let stats = shared.cache_stats();
        prop_assert!(stats.hits > 0, "no cross-clone or repeat hit ever occurred");
    }
}

#[test]
fn cross_clone_cache_hits_are_observable() {
    let s1 = session_for(7);
    let s2 = s1.clone();
    s1.rank().unwrap();

    // Clone 1 prices a variation cold…
    let (r1, _) = s1.what_if_disks(40).unwrap();
    let after_first = s1.cache_stats();
    assert!(after_first.misses > 0);

    // …and clone 2's identical what-if is served warm: not a single
    // fresh evaluation, only hits.
    let (r2, _) = s2.what_if_disks(40).unwrap();
    let after_second = s2.cache_stats();
    assert_eq!(r1, r2);
    assert_eq!(
        after_second.misses, after_first.misses,
        "the second clone re-costed candidates it should have inherited"
    );
    assert!(after_second.hits > after_first.hits);
}

#[test]
fn copy_on_write_mutation_is_invisible_to_concurrent_readers() {
    let mut writer = session_for(11);
    let reader = writer.clone();
    let baseline = reader.rank().unwrap().clone();

    std::thread::scope(|scope| {
        let handle = {
            let reader = reader.clone();
            scope.spawn(move || {
                // Keep reading while the writer swaps snapshots.
                (0..5)
                    .map(|_| reader.what_if_disks(48).unwrap().0)
                    .collect::<Vec<_>>()
            })
        };
        for disks in [4u32, 8, 32] {
            let mut system = *writer.system();
            system.num_disks = disks;
            writer.set_system(system).unwrap();
            writer.rank().unwrap();
        }
        let reports = handle.join().unwrap();
        for r in &reports {
            assert_eq!(r, &reports[0], "reader saw a torn snapshot");
        }
    });

    // The reader's snapshot never moved.
    assert_eq!(reader.rank().unwrap(), &baseline);
    assert!(!writer.shares_snapshot_with(&reader));
}
