//! CI smoke lane for the allocation-policy head-to-head judge.
//!
//! Two fixed workloads pin the judge's promised behavior:
//!
//! * a **correlated** mix (classes always read fragment pairs that both
//!   greedy-by-size and round-robin co-locate) where the graph
//!   partitioner must win with a *strictly* lower simulated makespan
//!   than either paper scheme, and
//! * a **uniform** mix (no co-access signal) where the graph backend
//!   degrades to greedy's placement and the simpler policy keeps the
//!   tie — graph is never recommended without a measured win.

use warlock_alloc::{greedy_by_size, partition_coaccess, round_robin, Allocation, CoAccessGraph};
use warlock_sim::{judge_head_to_head, ClassLoad, PolicyEntrant};

const STREAMS: usize = 4;
const ROUNDS: usize = 2;

/// Classes of the correlated fixture: each reads one `(f, f+4)` pair
/// for `pair_ms` milliseconds per fragment, with descending shares.
fn correlated_classes() -> Vec<(Vec<(usize, f64)>, f64)> {
    let shares = [0.4, 0.3, 0.2, 0.1];
    shares
        .iter()
        .enumerate()
        .map(|(i, &share)| (vec![(i, 10.0), (i + 4, 10.0)], share))
        .collect()
}

/// Sizes rigged so greedy-by-size *and* round-robin co-locate every
/// correlated pair on 4 disks (mirrors the `crates/alloc` fixture).
const CORRELATED_SIZES: [u64; 8] = [130, 120, 110, 100, 70, 80, 90, 100];

fn entrant(
    name: &str,
    allocation: &Allocation,
    classes: &[(Vec<(usize, f64)>, f64)],
) -> PolicyEntrant {
    PolicyEntrant {
        name: name.to_owned(),
        classes: classes
            .iter()
            .map(|(accessed, share)| ClassLoad::from_allocation(allocation, accessed, *share))
            .collect(),
    }
}

#[test]
fn judge_ranks_graph_first_on_the_correlated_mix() {
    let classes = correlated_classes();
    let mut b = CoAccessGraph::builder(CORRELATED_SIZES.to_vec());
    for (accessed, share) in &classes {
        let frags: Vec<u32> = accessed.iter().map(|&(f, _)| f as u32).collect();
        let joint: f64 = accessed.iter().map(|&(_, ms)| ms).sum();
        b.add_group(&frags, share * joint);
        for &(f, ms) in accessed {
            b.add_heat(f as u32, share * ms);
        }
    }
    let graph = partition_coaccess(&b.build(), 4, 0);
    let greedy = greedy_by_size(CORRELATED_SIZES.to_vec(), 4);
    let rr = round_robin(CORRELATED_SIZES.to_vec(), 4);
    // The fixture is adversarial: both paper schemes co-locate every
    // co-accessed pair.
    for f in 0..4 {
        assert_eq!(greedy.disk_of(f), greedy.disk_of(f + 4));
        assert_eq!(rr.disk_of(f), rr.disk_of(f + 4));
    }

    let entrants = [
        entrant("round_robin", &rr, &classes),
        entrant("greedy", &greedy, &classes),
        entrant("graph", &graph, &classes),
    ];
    let verdicts = judge_head_to_head(4, &entrants, STREAMS, ROUNDS);
    assert_eq!(verdicts[0].name, "graph", "graph must rank first");
    for v in &verdicts[1..] {
        assert!(
            verdicts[0].makespan_ms < v.makespan_ms,
            "graph ({} ms) must strictly beat {} ({} ms)",
            verdicts[0].makespan_ms,
            v.name,
            v.makespan_ms
        );
    }
}

#[test]
fn judge_keeps_greedy_ahead_on_the_uniform_mix() {
    // Eight disjoint single-fragment classes: zero co-access signal.
    let sizes = vec![100u64; 8];
    let classes: Vec<(Vec<(usize, f64)>, f64)> = (0..8).map(|f| (vec![(f, 10.0)], 0.125)).collect();
    let mut b = CoAccessGraph::builder(sizes.clone());
    for (accessed, share) in &classes {
        for &(f, ms) in accessed {
            b.add_heat(f as u32, share * ms);
        }
    }
    let g = b.build();
    assert_eq!(g.num_edges(), 0, "uniform mix builds an edgeless graph");
    let graph = partition_coaccess(&g, 4, 0);
    let greedy = greedy_by_size(sizes.clone(), 4);
    // Degradation promise: the graph backend reproduces greedy exactly.
    assert_eq!(graph.placements(), greedy.placements());

    let entrants = [
        entrant("greedy", &greedy, &classes),
        entrant("graph", &graph, &classes),
    ];
    let verdicts = judge_head_to_head(4, &entrants, STREAMS, ROUNDS);
    // Identical placements tie on makespan; the stable sort keeps the
    // simpler policy first, so greedy ≥ graph.
    assert_eq!(verdicts[0].name, "greedy");
    assert_eq!(verdicts[0].makespan_ms, verdicts[1].makespan_ms);
}

/// The full-stack recommendation (session → plans → simulator) is
/// deterministic and always judges all three policies.
#[test]
fn full_stack_recommendation_is_deterministic() {
    use warlock::prelude::*;
    let session = || {
        Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .build()
            .unwrap()
    };
    let a = session().recommend_policy().unwrap();
    let b = session().recommend_policy().unwrap();
    assert_eq!(a, b);
    assert_eq!(a.verdicts.len(), 3);
    assert_eq!(a.recommended, a.verdicts[0].policy);
}
