//! Robustness sweep: the full advisor over randomized schemas and
//! workloads. Nothing here checks specific numbers — it checks that the
//! pipeline upholds its contracts on arbitrary valid inputs.

use warlock::prelude::*;
use warlock::storage::Architecture;
use warlock_schema::{random_schema, RandomSchemaConfig};
use warlock_workload::{GeneratorConfig, WorkloadGenerator};

#[test]
fn advisor_never_fails_on_random_inputs() {
    for seed in 0..40u64 {
        let schema = random_schema(seed, RandomSchemaConfig::default()).unwrap();
        let mix = WorkloadGenerator::new(
            seed.wrapping_mul(31),
            GeneratorConfig {
                num_classes: 6,
                max_dimensionality: 3,
                range_probability: 0.3,
            },
        )
        .mix(&schema);
        mix.validate(&schema).unwrap();

        let disks = 1 + (seed % 32) as u32;
        let mut system = SystemConfig::default_2001(disks);
        if seed % 3 == 0 {
            system.architecture = Architecture::shared_disk(2, 4);
        }
        let session = Warlock::builder()
            .schema(schema)
            .system(system)
            .mix(mix)
            .build()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let report = session.rank().unwrap().clone();

        // Contracts: bookkeeping adds up; rankings ordered; baseline is
        // never beaten on response by nothing (some candidate exists —
        // the baseline itself always survives).
        assert_eq!(
            report.evaluated + report.excluded.total(),
            report.enumerated,
            "seed {seed}"
        );
        assert!(!report.ranked.is_empty(), "seed {seed}: no candidates");
        for w in report.ranked.windows(2) {
            assert!(
                w[0].cost.response_ms <= w[1].cost.response_ms,
                "seed {seed}: ranking disordered"
            );
        }
        // Response can exceed busy time only by the architecture's
        // coordination overhead (a serial query on Shared Disk pays it).
        let overhead = system.architecture.overhead_factor();
        for r in &report.ranked {
            assert!(r.cost.response_ms.is_finite() && r.cost.response_ms > 0.0);
            assert!(r.cost.io_cost_ms.is_finite() && r.cost.io_cost_ms > 0.0);
            assert!(
                r.cost.response_ms <= r.cost.io_cost_ms * overhead * 1.0000001,
                "seed {seed}: response {} vs busy {} (overhead {overhead})",
                r.cost.response_ms,
                r.cost.io_cost_ms
            );
        }

        // Analysis and allocation of the winner must be internally
        // consistent on every random input.
        let top = report.top().unwrap();
        let analysis = session.analyze(1).unwrap();
        assert_eq!(analysis.num_fragments, top.cost.num_fragments);
        let plan = session.plan_allocation(1).unwrap();
        assert_eq!(
            plan.allocation.num_fragments() as u64,
            top.cost.num_fragments
        );
        assert!(plan
            .allocation
            .placements()
            .iter()
            .all(|&d| d < system.num_disks));
    }
}

#[test]
fn what_if_tuning_survives_random_inputs() {
    for seed in 0..10u64 {
        let schema = random_schema(seed, RandomSchemaConfig::default()).unwrap();
        let mix = WorkloadGenerator::new(seed, GeneratorConfig::default()).mix(&schema);
        let session = TuningSession::new(
            schema,
            SystemConfig::default_2001(8),
            mix,
            AdvisorConfig::default(),
        )
        .unwrap();
        // Note: more disks do NOT guarantee a better *recommendation* —
        // the full-declustering threshold excludes candidates with fewer
        // fragments than disks, which can strand small schemas on the
        // baseline. Monotonicity holds per fixed fragmentation (covered in
        // advisor_pipeline.rs); here we only require well-formed results.
        let (more_report, more) = session.with_disks(32).unwrap();
        let (fewer_report, fewer) = session.with_disks(2).unwrap();
        assert!(!more_report.ranked.is_empty() && !fewer_report.ranked.is_empty());
        assert!(more.variation_response_ms.is_finite() && more.variation_response_ms > 0.0);
        assert!(fewer.variation_response_ms.is_finite() && fewer.variation_response_ms > 0.0);
        // When both runs recommend the same fragmentation, monotonicity
        // must hold.
        if more.variation_top == fewer.variation_top {
            assert!(more.variation_response_ms <= fewer.variation_response_ms * 1.0000001);
        }
        let (_, fixed) = session.with_fixed_prefetch(4).unwrap();
        assert!(fixed.variation_response_ms.is_finite());
    }
}

#[test]
fn degenerate_configurations_are_handled() {
    // One dimension, one level, one disk, one processor.
    let schema = random_schema(
        1,
        RandomSchemaConfig {
            dimensions: (1, 1),
            depth: (1, 1),
            max_fanout: 4,
            max_rows: 1000,
        },
    )
    .unwrap();
    let mix = WorkloadGenerator::new(
        2,
        GeneratorConfig {
            num_classes: 1,
            max_dimensionality: 1,
            range_probability: 0.0,
        },
    )
    .mix(&schema);
    let mut system = SystemConfig::default_2001(1);
    system.architecture = Architecture::SharedEverything { processors: 1 };
    let report = Warlock::builder()
        .schema(schema)
        .system(system)
        .mix(mix)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(!report.ranked.is_empty());
    // On one disk, response equals busy time for every candidate.
    for r in &report.ranked {
        assert!((r.cost.response_ms - r.cost.io_cost_ms).abs() < 1e-6);
    }
}
