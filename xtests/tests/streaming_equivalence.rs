//! Streaming-vs-materialized equivalence: the chunked, lazy,
//! bounded-memory pipeline must produce an `AdvisorReport` that is
//! **bit-identical** to the historical materialized pass — enumerate
//! everything, exclude, cost, `twofold_rank` — for arbitrary valid
//! inputs, at any worker count, any chunk size, and with warm or cold
//! evaluation caches.
//!
//! The reference below re-implements the materialized seed path from
//! public pieces (`enumerate_candidates_ranged`, `FragmentLayout`,
//! `Thresholds::check`, `CostModel`, `twofold_rank`), so the streaming
//! engine is checked against an independent implementation, not against
//! itself.

use proptest::prelude::*;

use warlock::prelude::*;
use warlock::{AdvisorReport, ExcludedCandidate, ExcludedSummary, RankedCandidate};
use warlock_cost::CostModel;
use warlock_fragment::{enumerate_candidates_ranged, Exclusion, FragmentLayout};
use warlock_schema::{random_schema, RandomSchemaConfig};
use warlock_workload::{GeneratorConfig, WorkloadGenerator};

fn session_for(seed: u64, workers: usize, chunk: usize, ranged: bool) -> Warlock {
    let schema = random_schema(
        seed,
        RandomSchemaConfig {
            dimensions: (1, 4),
            depth: (1, 3),
            ..Default::default()
        },
    )
    .unwrap();
    let mix = WorkloadGenerator::new(
        seed.wrapping_mul(0x9e37_79b9),
        GeneratorConfig {
            num_classes: 4,
            max_dimensionality: 3,
            range_probability: 0.25,
        },
    )
    .mix(&schema);
    let disks = 1 + (seed % 24) as u32;
    let config = AdvisorConfig {
        range_options: if ranged { vec![2, 3, 5] } else { Vec::new() },
        ..Default::default()
    };
    Warlock::builder()
        .schema(schema)
        .system(SystemConfig::default_2001(disks))
        .mix(mix)
        .config(config)
        .parallelism(workers)
        .chunk_size(chunk)
        .build()
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
}

/// The materialized seed path, rebuilt from public substrate APIs:
/// enumerate the whole space, exclude, cost every survivor, twofold
/// rank at the end.
fn materialized_reference(session: &Warlock) -> AdvisorReport {
    let schema = session.schema();
    let config = session.config();
    let ctx = session.threshold_context();
    let model = CostModel::new(schema, session.system(), session.scheme(), session.mix())
        .with_fact_index(config.fact_index)
        .unwrap();

    let candidates =
        enumerate_candidates_ranged(schema, config.max_dimensionality, &config.range_options);
    let enumerated = candidates.len();
    let mut excluded = ExcludedSummary::new();
    let mut costs = Vec::new();
    for fragmentation in candidates {
        let raw_count = fragmentation.num_fragments(schema);
        let outcome = if raw_count > u128::from(u64::MAX) {
            Err(Exclusion::FragmentCountOverflow {
                fragments: raw_count,
            })
        } else if raw_count > u128::from(config.thresholds.max_fragments) {
            Err(Exclusion::TooManyFragments {
                fragments: raw_count as u64,
                limit: config.thresholds.max_fragments,
            })
        } else {
            let layout = FragmentLayout::new(schema, fragmentation.clone(), config.fact_index);
            config
                .thresholds
                .check(&layout, ctx)
                .map(|()| model.evaluate_layout(&layout))
        };
        match outcome {
            Err(reason) => excluded.record(reason, || ExcludedCandidate {
                label: fragmentation.label(schema),
                fragmentation: fragmentation.clone(),
                reason,
            }),
            Ok(cost) => costs.push(cost),
        }
    }

    let evaluated = costs.len();
    let mut ranked_costs = warlock::twofold_rank(costs, config.top_x_percent, config.min_keep);
    ranked_costs.truncate(config.top_n);
    let ranked = ranked_costs
        .into_iter()
        .enumerate()
        .map(|(i, cost)| RankedCandidate {
            rank: i + 1,
            label: cost.fragmentation.label(schema),
            cost,
        })
        .collect();

    AdvisorReport {
        ranked,
        excluded,
        evaluated,
        enumerated,
        scheme: session.scheme().clone(),
    }
}

fn assert_bit_identical(streamed: &AdvisorReport, reference: &AdvisorReport) {
    assert_eq!(streamed, reference);
    for (a, b) in streamed.ranked.iter().zip(&reference.ranked) {
        assert_eq!(a.cost.response_ms.to_bits(), b.cost.response_ms.to_bits());
        assert_eq!(a.cost.io_cost_ms.to_bits(), b.cost.io_cost_ms.to_bits());
        for (qa, qb) in a.cost.per_query.iter().zip(&b.cost.per_query) {
            assert_eq!(qa.response_ms.to_bits(), qb.response_ms.to_bits());
            assert_eq!(qa.busy_ms.to_bits(), qb.busy_ms.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn streaming_pipeline_is_bit_identical_to_materialized(
        seed in 0u64..4096,
        workers in 1usize..6,
        chunk_pick in 0usize..6,
        ranged in any::<bool>(),
    ) {
        let chunk = [1usize, 2, 3, 17, 256, 100_000][chunk_pick];
        let session = session_for(seed, workers, chunk, ranged);
        let reference = materialized_reference(&session);

        // Cold run.
        let cold = session.run().unwrap();
        assert_bit_identical(&cold, &reference);
        prop_assert_eq!(cold.enumerated as u128, session.candidate_space_size());

        // Warm run: every outcome comes from the shared cache, and the
        // report must not change by a bit.
        let misses_after_cold = session.cache_stats().misses;
        let warm = session.run().unwrap();
        assert_bit_identical(&warm, &reference);
        // A warm streaming re-run must be served entirely from the cache.
        prop_assert_eq!(session.cache_stats().misses, misses_after_cold);
    }

    #[test]
    fn chunk_size_never_changes_a_report(
        seed in 0u64..1024,
        workers in 1usize..4,
    ) {
        let reference = session_for(seed, workers, 1, false).run().unwrap();
        for chunk in [2usize, 5, 64, 100_000] {
            let report = session_for(seed, workers, chunk, false).run().unwrap();
            prop_assert_eq!(&report, &reference);
        }
    }
}
