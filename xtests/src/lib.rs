//! Workspace-level integration tests live in `xtests/tests/`.
