//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the rand 0.8 API it actually uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), slice shuffling and
//! index sampling without replacement. The statistical quality is more
//! than sufficient for the simulator and generators in this repository;
//! it is **not** a cryptographic generator.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64 as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i32 => u32, i64 => u64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64 (Blackman & Vigna).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (shuffling, sampling without replacement).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::RngCore;
        use std::collections::HashSet;

        /// A set of sampled indices (mirrors `rand::seq::index::IndexVec`).
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no index was sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly,
        /// in random order. Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            // Robert Floyd's algorithm: O(amount) draws, no bias.
            let mut chosen: HashSet<usize> = HashSet::with_capacity(amount);
            let mut out = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = (rng.next_u64() % (j as u64 + 1)) as usize;
                let pick = if chosen.contains(&t) { j } else { t };
                chosen.insert(pick);
                out.push(pick);
            }
            // Floyd yields a uniformly random *set*; shuffle for a random
            // permutation like rand's implementation.
            for i in (1..out.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                out.swap(i, j);
            }
            IndexVec(out)
        }
    }
}

/// The traits and types most users want in scope.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::seq::index::sample;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let v: u64 = rng.gen_range(2..=9);
            assert!((2..=9).contains(&v));
            let f: f64 = rng.gen_range(1.0..10.0);
            assert!((1.0..10.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn sample_without_replacement() {
        let mut rng = StdRng::seed_from_u64(3);
        for amount in [0, 1, 5, 99, 100] {
            let idx: Vec<usize> = sample(&mut rng, 100, amount).into_iter().collect();
            assert_eq!(idx.len(), amount);
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), amount, "duplicates in {idx:?}");
            assert!(idx.iter().all(|&i| i < 100));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dyn<R: super::Rng + ?Sized>(rng: &mut R) -> usize {
            // Mirrors `bind_query`'s generic bound: methods resolve via
            // the `&mut R` blanket impl.
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(0);
        assert!(takes_dyn(&mut rng) < 10);
    }
}
