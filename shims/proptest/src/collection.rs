//! Collection strategies: random-length vectors and sets.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Ranges usable as collection-size specifications.
pub trait SizeRange {
    /// Draws a size from the range.
    fn pick_size(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick_size(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick_size(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below(self.end - self.start)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick_size(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty size range");
        lo + rng.below(hi - lo + 1)
    }
}

/// A strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick_size(rng);
        (0..n).map(|_| self.element.pick(rng)).collect()
    }
}

/// A strategy for `BTreeSet<S::Value>` with a target size drawn from
/// `size`. Collisions may yield a smaller set (as in real proptest when
/// the element domain is small).
pub fn btree_set<S>(element: S, size: impl SizeRange) -> BTreeSetStrategy<S, impl SizeRange>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S, R> {
    element: S,
    size: R,
}

impl<S, R> Strategy for BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: SizeRange,
{
    type Value = BTreeSet<S::Value>;

    fn pick(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick_size(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(16) + 64 {
            out.insert(self.element.pick(rng));
            attempts += 1;
        }
        out
    }
}
