//! The [`Strategy`] trait, primitive strategies and combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is simply a
/// deterministic sampler over a seeded generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `f` (resampling, with a bounded
    /// number of attempts).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Boxes this strategy (parity helper with real proptest).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (**self).pick(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn pick(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.pick(rng)).pick(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn pick(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.pick(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}): no accepted value in 10000 attempts",
            self.whence
        );
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<Value = T>>);

trait ErasedStrategy {
    type Value;
    fn pick_erased(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> ErasedStrategy for S {
    type Value = S::Value;
    fn pick_erased(&self, rng: &mut TestRng) -> S::Value {
        self.pick(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        self.0.pick_erased(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.pick(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

/// A `Vec` of strategies generates a `Vec` of values, element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.pick(rng)).collect()
    }
}

/// An array of strategies generates an array of values, element-wise.
impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn pick(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|i| self[i].pick(rng))
    }
}
