//! Test configuration, case outcomes and the deterministic generator.

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl Config {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` or a filter; it is retried
    /// without counting toward the case budget.
    Reject(String),
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// Builds a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// The deterministic generator driving value generation (xoshiro256++).
///
/// A fixed seed keeps property tests reproducible from run to run; a
/// failing case therefore fails every time until fixed.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// The generator every `proptest!` block starts from.
    pub fn deterministic() -> Self {
        Self::with_seed(0xC0FF_EE11_D15C_0B75)
    }

    /// A generator from an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next uniformly distributed `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }
}
