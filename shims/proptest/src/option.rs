//! Strategies over `Option`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy yielding `None` about a quarter of the time and
/// `Some(inner)` otherwise (real proptest defaults to a similar split).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn pick(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.pick(rng))
        }
    }
}
