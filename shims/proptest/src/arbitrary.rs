//! The [`any`] entry point and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — a pragmatic domain for numeric properties
    /// (real proptest generates special values too; tests in this
    /// workspace only need well-behaved floats).
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
