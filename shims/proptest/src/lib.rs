//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the proptest API its property tests use:
//! [`Strategy`] with `prop_map`/`prop_flat_map`/`prop_filter`, range and
//! tuple strategies, [`collection::vec`]/[`collection::btree_set`],
//! [`option::of`], [`sample::subsequence`], [`arbitrary::any`], the
//! [`proptest!`] macro, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the generated inputs printed), and generation is driven by a
//! fixed-seed deterministic generator so failures reproduce across runs.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::{Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

/// The traits, types and macros most property tests want in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            // A tuple of strategies is itself a strategy over tuples.
            let __strategy = ($($strat,)+);
            let mut __cases = 0u32;
            let mut __rejects = 0u32;
            while __cases < __config.cases {
                let ($($arg,)+) = $crate::strategy::Strategy::pick(&__strategy, &mut __rng);
                let __shown = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg,)+
                );
                let __outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    Ok(()) => __cases += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejects += 1;
                        assert!(
                            __rejects < 1 << 16,
                            "proptest: too many prop_assume!/prop_filter rejections \
                             ({} cases ran)",
                            __cases
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed after {} passing cases: {}\n  inputs: {}",
                            __cases, msg, __shown
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property test; the failing inputs are
/// reported by the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Asserts two expressions differ inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(a in 1u64..10, b in 0usize..=4, c in 0.0f64..1.0) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((0.0..1.0).contains(&c));
        }

        #[test]
        fn combinators(v in crate::collection::vec(crate::any::<u64>(), 1..8),
                       s in crate::collection::btree_set(0usize..64, 0..16),
                       o in crate::option::of(1u16..5),
                       sub in crate::sample::subsequence(vec![1, 2, 3, 4], 1..=4)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(s.len() < 16);
            prop_assert!(s.iter().all(|&x| x < 64));
            if let Some(x) = o {
                prop_assert!((1..5).contains(&x));
            }
            prop_assert!(!sub.is_empty());
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn mapped(x in (0u64..100).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0 && x < 200);
        }

        #[test]
        fn flat_mapped(pair in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u64..10, n..n + 1).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn filtered(x in (0u64..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 3 == 0);
            prop_assert!(x % 3 == 0);
        }

        #[test]
        fn vec_of_strategies_is_a_strategy(
            vals in vec![0u64..5, 10u64..15, 20u64..25].prop_map(|v| v)
        ) {
            prop_assert_eq!(vals.len(), 3);
            prop_assert!(vals[0] < 5 && vals[1] >= 10 && vals[1] < 15 && vals[2] >= 20);
        }
    }

    #[test]
    fn btree_set_values_unique_by_construction() {
        let mut rng = TestRng::deterministic();
        let strat = crate::collection::btree_set(0usize..8, 0..6);
        for _ in 0..50 {
            let s: BTreeSet<usize> = crate::Strategy::pick(&strat, &mut rng);
            assert!(s.len() < 6);
        }
    }

    use crate::TestRng;
}
