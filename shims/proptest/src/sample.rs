//! Strategies sampling from explicit value sets.

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy yielding order-preserving subsequences of `values` whose
/// length is drawn from `size`.
pub fn subsequence<T: Clone>(
    values: Vec<T>,
    size: impl SizeRange,
) -> SubsequenceStrategy<T, impl SizeRange> {
    SubsequenceStrategy { values, size }
}

/// See [`subsequence`].
#[derive(Debug, Clone)]
pub struct SubsequenceStrategy<T, R> {
    values: Vec<T>,
    size: R,
}

impl<T: Clone, R: SizeRange> Strategy for SubsequenceStrategy<T, R> {
    type Value = Vec<T>;

    fn pick(&self, rng: &mut TestRng) -> Vec<T> {
        let n = self.size.pick_size(rng).min(self.values.len());
        // Choose n distinct positions via partial Fisher–Yates, then
        // restore source order.
        let mut idx: Vec<usize> = (0..self.values.len()).collect();
        for i in 0..n {
            let j = i + rng.below(idx.len() - i);
            idx.swap(i, j);
        }
        let mut chosen = idx[..n].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.values[i].clone()).collect()
    }
}

/// A strategy choosing one element of `values` uniformly.
pub fn select<T: Clone>(values: Vec<T>) -> SelectStrategy<T> {
    SelectStrategy { values }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct SelectStrategy<T> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for SelectStrategy<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        assert!(!self.values.is_empty(), "select from empty set");
        self.values[rng.below(self.values.len())].clone()
    }
}
