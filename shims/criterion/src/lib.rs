//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the criterion API its benchmarks use:
//! [`Criterion`] with `bench_function`/`benchmark_group`/`bench_with_input`,
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`]/
//! [`criterion_main!`] macros. Benchmarks are wall-clock timed with a
//! warm-up phase and a fixed sample count, and results (mean/min per
//! iteration, plus derived throughput) are printed to stdout — no HTML
//! reports, outlier analysis or regression baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time spent measuring each benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time before measurement starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Times `f` under the id `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id.full_name(), |b| f(b));
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        // The group gets a private copy of the configuration so its
        // sample_size/measurement_time overrides end with the group (as
        // in real criterion) instead of leaking into later benchmarks.
        let config = self.clone();
        BenchmarkGroup {
            config,
            name: name.into(),
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix, throughput and
/// group-scoped configuration overrides.
pub struct BenchmarkGroup<'a> {
    config: Criterion,
    name: String,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work volume for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement time within this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Times `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().full_name());
        let throughput = self.throughput.clone();
        run_one_with_throughput(&mut self.config, &full, throughput, |b| f(b));
        self
    }

    /// Times `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().full_name());
        let throughput = self.throughput.clone();
        run_one_with_throughput(&mut self.config, &full, throughput, |b| f(b, input));
        self
    }

    /// Ends the group (parity with real criterion; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            name,
            parameter: None,
        }
    }
}

/// The per-iteration work volume of a benchmark.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Runs the timed closure handed to `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it for the harness-chosen number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(c: &mut Criterion, name: &str, f: impl FnMut(&mut Bencher)) {
    run_one_with_throughput(c, name, None, f);
}

fn run_one_with_throughput(
    c: &mut Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up: discover the iteration rate while warming caches.
    let warm_up_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_up_start.elapsed() < c.warm_up_time {
        f(&mut bencher);
        warm_iters += bencher.iters;
        // Grow geometrically so cheap benchmarks don't spin on overhead.
        bencher.iters = (bencher.iters * 2).min(1 << 20);
    }
    let warm_elapsed = warm_up_start.elapsed().max(Duration::from_nanos(1));
    let per_iter_ns = (warm_elapsed.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

    // Measurement: `sample_size` samples splitting `measurement_time`.
    let per_sample_ns = c.measurement_time.as_nanos() as f64 / c.sample_size as f64;
    let iters_per_sample = ((per_sample_ns / per_iter_ns) as u64).max(1);
    let mut samples_ns: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        bencher.iters = iters_per_sample;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);

    let rate = match throughput {
        Some(Throughput::Bytes(b)) if mean > 0.0 => {
            format!("  {:>10.1} MiB/s", b as f64 / mean * 1e9 / (1 << 20) as f64)
        }
        Some(Throughput::Elements(e)) if mean > 0.0 => {
            format!("  {:>10.0} elem/s", e as f64 / mean * 1e9)
        }
        _ => String::new(),
    };
    println!(
        "{name:<52} time: [mean {} min {}]{}",
        format_ns(mean),
        format_ns(min),
        rate
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs this file's benchmark targets.
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = quick();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = quick();
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Bytes(4096));
        g.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn group_overrides_do_not_leak_into_the_parent() {
        let mut c = quick();
        let before = format!("{c:?}");
        let mut g = c.benchmark_group("scoped");
        g.sample_size(100)
            .measurement_time(Duration::from_millis(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.finish();
        assert_eq!(format!("{c:?}"), before);
    }
}
